//! The executor's determinism contract: every observable output —
//! answers, cost reports, recorded telemetry tables — is independent of
//! the [`ExecPool`] thread budget. Host wall-clock is the only thing
//! parallelism is allowed to change.

use proptest::prelude::*;
use sea_common::{AggregateKind, AnalyticalQuery, Record, Rect, Region};
use sea_query::{ExecPool, Executor};
use sea_storage::{Partitioning, StorageCluster};
use sea_telemetry::{SpanNode, TelemetrySink};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn build_cluster(
    n: usize,
    nodes: usize,
    partitioning: Partitioning,
    offset: f64,
) -> StorageCluster {
    let mut c = StorageCluster::new(nodes, 64);
    let records: Vec<Record> = (0..n)
        .map(|i| {
            Record::new(
                i as u64,
                vec![
                    (i % 100) as f64,
                    offset + (i % 7) as f64,
                    ((i * 31) % 53) as f64,
                ],
            )
        })
        .collect();
    c.load_table("t", records, partitioning).unwrap();
    c
}

fn aggregate_by_index(idx: usize) -> AggregateKind {
    match idx {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum { dim: 1 },
        2 => AggregateKind::Mean { dim: 1 },
        3 => AggregateKind::Variance { dim: 1 },
        4 => AggregateKind::Min { dim: 2 },
        5 => AggregateKind::Max { dim: 2 },
        6 => AggregateKind::Median { dim: 0 },
        7 => AggregateKind::Quantile { dim: 0, q: 0.75 },
        8 => AggregateKind::Correlation { x: 0, y: 2 },
        _ => AggregateKind::Regression { x: 0, y: 1 },
    }
}

fn partitioning_by_index(idx: usize) -> Partitioning {
    if idx == 0 {
        Partitioning::Hash
    } else {
        Partitioning::Range {
            dim: 0,
            splits: Partitioning::equi_width_splits(0.0, 100.0, 4),
        }
    }
}

/// Comparable rendering of an execution result: outcomes compare
/// structurally, errors by message.
fn outcome_key(r: &sea_common::Result<sea_query::QueryOutcome>) -> String {
    format!("{r:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn outputs_are_identical_across_thread_counts(
        n in 200..700usize,
        agg_idx in 0..10usize,
        part_idx in 0..2usize,
        nodes in 2..7usize,
        lo in 0..40u32,
        width in 5..60u32,
    ) {
        let cluster = build_cluster(n, nodes, partitioning_by_index(part_idx), 0.0);
        let region = Region::Range(
            Rect::new(
                vec![f64::from(lo), 0.0, 0.0],
                vec![f64::from(lo + width), 8.0, 60.0],
            )
            .unwrap(),
        );
        let query = AnalyticalQuery::new(region, aggregate_by_index(agg_idx));
        let baseline_exec = Executor::new(&cluster).with_pool(ExecPool::sequential());
        let bdas0 = outcome_key(&baseline_exec.execute_bdas("t", &query));
        let direct0 = outcome_key(&baseline_exec.execute_direct("t", &query));
        for threads in THREAD_COUNTS {
            let exec = Executor::new(&cluster).with_pool(ExecPool::new(threads));
            prop_assert_eq!(
                &outcome_key(&exec.execute_bdas("t", &query)),
                &bdas0,
                "bdas with {} threads",
                threads
            );
            prop_assert_eq!(
                &outcome_key(&exec.execute_direct("t", &query)),
                &direct0,
                "direct with {} threads",
                threads
            );
        }
    }
}

fn zero_wall(node: &mut SpanNode) {
    node.wall_us = 0.0;
    for c in &mut node.children {
        zero_wall(c);
    }
}

/// Runs one workload under a recording sink with the given thread
/// budget and returns the snapshot with wall-clock scrubbed.
fn recorded_snapshot(threads: usize) -> sea_telemetry::TelemetrySnapshot {
    let mut cluster = build_cluster(2000, 4, Partitioning::Hash, 0.0);
    let sink = TelemetrySink::recording();
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster).with_pool(ExecPool::new(threads));
    for agg_idx in 0..6usize {
        sink.begin_query(agg_idx as u64);
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![10.0, 0.0, 0.0], vec![70.0, 8.0, 60.0]).unwrap()),
            aggregate_by_index(agg_idx),
        );
        exec.execute_bdas("t", &q).unwrap();
        exec.execute_direct("t", &q).unwrap();
    }
    let mut snap = sink.snapshot().unwrap();
    for root in &mut snap.spans.roots {
        zero_wall(root);
    }
    snap
}

#[test]
fn recorded_telemetry_tables_are_bit_identical_across_thread_counts() {
    let base = recorded_snapshot(1);
    assert!(!base.spans.roots.is_empty());
    assert!(base.counter("storage.node.scans") > 0);
    for threads in [2, 8] {
        let snap = recorded_snapshot(threads);
        assert_eq!(snap.counters, base.counters, "{threads} threads: counters");
        assert_eq!(
            snap.histograms, base.histograms,
            "{threads} threads: histograms"
        );
        assert_eq!(snap.events, base.events, "{threads} threads: events");
        assert_eq!(
            snap.spans, base.spans,
            "{threads} threads: span forest (ids, parents, tags, sim)"
        );
    }
}

#[test]
fn execute_batch_matches_per_query_execution() {
    let cluster = build_cluster(3000, 5, Partitioning::Hash, 0.0);
    let queries: Vec<AnalyticalQuery> = (0..24usize)
        .map(|i| {
            AnalyticalQuery::new(
                Region::Range(
                    Rect::new(
                        vec![(i % 10) as f64 * 5.0, 0.0, 0.0],
                        vec![(i % 10) as f64 * 5.0 + 20.0, 8.0, 60.0],
                    )
                    .unwrap(),
                ),
                aggregate_by_index(i % 10),
            )
        })
        .collect();
    let exec = Executor::new(&cluster).with_pool(ExecPool::new(8));
    let sequential = Executor::new(&cluster).with_pool(ExecPool::sequential());
    let batch_direct = exec.execute_batch("t", &queries);
    let batch_bdas = exec.execute_batch_bdas("t", &queries);
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            outcome_key(&batch_direct[i]),
            outcome_key(&sequential.execute_direct("t", q)),
            "direct query {i}"
        );
        assert_eq!(
            outcome_key(&batch_bdas[i]),
            outcome_key(&sequential.execute_bdas("t", q)),
            "bdas query {i}"
        );
    }
}

#[test]
fn batch_spans_land_under_the_batch_root() {
    let mut cluster = build_cluster(1000, 4, Partitioning::Hash, 0.0);
    let sink = TelemetrySink::recording();
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster).with_pool(ExecPool::new(4));
    let queries: Vec<AnalyticalQuery> = (0..8usize)
        .map(|i| {
            AnalyticalQuery::new(
                Region::Range(
                    Rect::new(vec![0.0, 0.0, 0.0], vec![40.0 + i as f64, 8.0, 60.0]).unwrap(),
                ),
                AggregateKind::Count,
            )
        })
        .collect();
    let results = exec.execute_batch("t", &queries);
    assert!(results.iter().all(Result::is_ok));
    let snap = sink.snapshot().unwrap();
    let batch = snap
        .spans
        .roots
        .iter()
        .find(|r| r.name == "query.executor.batch")
        .expect("batch root span");
    let per_query: Vec<_> = batch
        .children
        .iter()
        .filter(|c| c.name == "query.executor.direct")
        .collect();
    assert_eq!(per_query.len(), 8, "every query's tree under the batch");
    for q in per_query {
        assert!(q.find("query.executor.scatter").is_some());
        assert!(q.find("query.executor.gather").is_some());
        assert_eq!(q.parent_span_id, batch.span_id);
    }
    assert_eq!(snap.spans.open_spans, 0);
}
