//! Chaos determinism: a fixed [`FaultPlan`] seed must produce
//! bit-identical observables — answers, cost reports (retries, backoff,
//! availability), recorded telemetry tables — at any [`ExecPool`] thread
//! count. Fault decisions are keyed on (seed, node, per-node operation
//! index), and every node is scanned by exactly one worker per query, so
//! the injected fault sequence is independent of scheduling.
//!
//! Fault state is stateful (per-node operation counters, crash latches),
//! so each run builds a fresh cluster with the same plan.

use proptest::prelude::*;
use sea_common::{AggregateKind, AnalyticalQuery, Record, Rect, Region};
use sea_query::{ExecPool, Executor, RetryPolicy};
use sea_storage::{FaultPlan, Partitioning, StorageCluster};
use sea_telemetry::{SpanNode, TelemetrySink};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn build_cluster(replicated: bool, nodes: usize) -> StorageCluster {
    let mut c = if replicated {
        StorageCluster::with_replication(nodes, 64)
    } else {
        StorageCluster::new(nodes, 64)
    };
    let records: Vec<Record> = (0..2000)
        .map(|i| {
            Record::new(
                i as u64,
                vec![(i % 100) as f64, (i % 7) as f64, ((i * 31) % 53) as f64],
            )
        })
        .collect();
    c.load_table("t", records, Partitioning::Hash).unwrap();
    c
}

fn aggregate_by_index(idx: usize) -> AggregateKind {
    match idx {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum { dim: 1 },
        2 => AggregateKind::Mean { dim: 1 },
        3 => AggregateKind::Variance { dim: 1 },
        4 => AggregateKind::Median { dim: 0 },
        _ => AggregateKind::Quantile { dim: 0, q: 0.75 },
    }
}

/// Comparable rendering of an execution result: outcomes (answer, full
/// cost report, availability) compare structurally, errors by message.
fn outcome_key(r: &sea_common::Result<sea_query::QueryOutcome>) -> String {
    format!("{r:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn faulted_outputs_are_identical_across_thread_counts(
        seed in 0..1_000u64,
        rate_pct in 0..80u32,
        recovery in 1..4u32,
        crash_node in 0..4usize,
        crash_op in 0..3u64,
        slow_node in 0..4usize,
        agg_idx in 0..6usize,
        replicated_idx in 0..2usize,
        partial_idx in 0..2usize,
    ) {
        let replicated = replicated_idx == 1;
        let partial = partial_idx == 1;
        let plan = FaultPlan::new(seed)
            .with_transient(f64::from(rate_pct) / 100.0, recovery)
            .with_crash(crash_node, crash_op)
            .with_slow_node(slow_node, 2.5);
        let query = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![10.0, 0.0, 0.0], vec![70.0, 8.0, 60.0]).unwrap()),
            aggregate_by_index(agg_idx),
        );
        // Fault state is stateful: every run gets a fresh cluster armed
        // with the identical plan.
        let run = |pool: ExecPool| {
            let mut cluster = build_cluster(replicated, 4);
            cluster.set_fault_plan(plan.clone());
            let exec = Executor::new(&cluster)
                .with_pool(pool)
                .with_partial_answers(partial);
            (
                outcome_key(&exec.execute_bdas("t", &query)),
                outcome_key(&exec.execute_direct("t", &query)),
            )
        };
        let base = run(ExecPool::sequential());
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&run(ExecPool::new(threads)), &base, "{} threads", threads);
        }
    }
}

fn zero_wall(node: &mut SpanNode) {
    node.wall_us = 0.0;
    for c in &mut node.children {
        zero_wall(c);
    }
}

/// Runs a fault-riddled workload under a recording sink with the given
/// thread budget and returns the snapshot with host wall-clock scrubbed.
fn chaos_snapshot(threads: usize) -> sea_telemetry::TelemetrySnapshot {
    let mut cluster = build_cluster(true, 4);
    let sink = TelemetrySink::recording();
    cluster.set_telemetry(sink.clone());
    cluster.set_fault_plan(
        FaultPlan::new(42)
            .with_transient(0.3, 2)
            .with_crash(2, 5)
            .with_slow_node(1, 3.0),
    );
    let exec = Executor::new(&cluster)
        .with_pool(ExecPool::new(threads))
        .with_partial_answers(true)
        .with_retry_policy(RetryPolicy {
            max_retries: 2,
            backoff_base_us: 5_000,
        });
    for agg_idx in 0..6usize {
        sink.begin_query(agg_idx as u64);
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![10.0, 0.0, 0.0], vec![70.0, 8.0, 60.0]).unwrap()),
            aggregate_by_index(agg_idx),
        );
        // Partial-answer mode keeps degraded outcomes well-typed; any
        // residual errors must still be identical run to run, so results
        // are deliberately ignored here (the proptest above covers them).
        let _ = exec.execute_bdas("t", &q);
        let _ = exec.execute_direct("t", &q);
    }
    let mut snap = sink.snapshot().unwrap();
    for root in &mut snap.spans.roots {
        zero_wall(root);
    }
    snap
}

#[test]
fn chaos_telemetry_tables_are_bit_identical_across_thread_counts() {
    let base = chaos_snapshot(1);
    assert!(
        base.counter("query.retries") > 0,
        "the plan actually injects retried transients"
    );
    assert!(
        base.counter("query.failovers") > 0,
        "the crashed node actually fails over"
    );
    for threads in [2, 8] {
        let snap = chaos_snapshot(threads);
        assert_eq!(snap.counters, base.counters, "{threads} threads: counters");
        assert_eq!(
            snap.histograms, base.histograms,
            "{threads} threads: histograms"
        );
        assert_eq!(snap.events, base.events, "{threads} threads: events");
        assert_eq!(
            snap.spans, base.spans,
            "{threads} threads: span forest (ids, parents, tags, sim)"
        );
    }
}
