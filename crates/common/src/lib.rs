//! # sea-common
//!
//! Core types shared by every crate in the SEA workspace: multi-dimensional
//! points and records, query selection regions, aggregate operators, cost
//! accounting for the simulated distributed substrate, and the workspace-wide
//! error type.
//!
//! The SEA system (from Triantafillou, *Towards Intelligent Distributed Data
//! Systems for Scalable, Efficient and Accurate Analytics*, ICDCS 2018)
//! processes analytical queries of the form *selection region* + *analytical
//! operator*. This crate defines both halves ([`Region`], [`AggregateKind`])
//! as plain data so that every engine — the exact BDAS-style executor, the
//! approximate baselines, and the data-less SEA agent — answers exactly the
//! same queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod cost;
pub mod error;
pub mod kernels;
pub mod point;
pub mod query;
pub mod record;
pub mod region;

pub use aggregate::{AggregateKind, AnswerValue, BivariateStats};
pub use cost::{CostMeter, CostModel, CostReport};
pub use error::SeaError;
pub use kernels::SelectionMask;
pub use point::Point;
pub use query::AnalyticalQuery;
pub use record::{Record, RecordId};
pub use region::{Ball, Rect, Region};

/// Result alias used across the SEA workspace.
pub type Result<T> = std::result::Result<T, SeaError>;
