//! The workspace-wide error type.

use std::fmt;

/// Errors produced by SEA library crates.
///
/// All fallible public APIs in the workspace return
/// [`crate::Result`]`<T>` = `Result<T, SeaError>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SeaError {
    /// A point, record, or region had a different dimensionality than the
    /// structure it was used with.
    DimensionMismatch {
        /// Dimensionality the structure expects.
        expected: usize,
        /// Dimensionality that was supplied.
        actual: usize,
    },
    /// A numeric argument was outside its valid range.
    InvalidArgument(String),
    /// A named entity (table, node, model, dataset) does not exist.
    NotFound(String),
    /// The operation requires data (or training) that is not yet available.
    Empty(String),
    /// A model could not be trained or evaluated.
    Model(String),
    /// The simulated storage or network layer rejected the operation.
    Storage(String),
    /// Serialization or deserialization failed.
    Serde(String),
    /// A transient fault: the operation failed now but is expected to
    /// succeed if retried (injected faults, simulated packet loss).
    /// Callers with a retry budget should retry; everyone else should
    /// treat it like [`SeaError::Storage`].
    Transient(String),
}

impl fmt::Display for SeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeaError::DimensionMismatch { expected, actual } => write!(
                f,
                "dimension mismatch: expected {expected} dimensions, got {actual}"
            ),
            SeaError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SeaError::NotFound(what) => write!(f, "not found: {what}"),
            SeaError::Empty(what) => write!(f, "empty: {what}"),
            SeaError::Model(msg) => write!(f, "model error: {msg}"),
            SeaError::Storage(msg) => write!(f, "storage error: {msg}"),
            SeaError::Serde(msg) => write!(f, "serialization error: {msg}"),
            SeaError::Transient(msg) => write!(f, "transient fault: {msg}"),
        }
    }
}

impl std::error::Error for SeaError {}

impl SeaError {
    /// Convenience constructor for [`SeaError::InvalidArgument`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        SeaError::InvalidArgument(msg.into())
    }

    /// Whether this error is worth retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, SeaError::Transient(_))
    }

    /// Checks that `actual == expected`, returning a
    /// [`SeaError::DimensionMismatch`] otherwise.
    pub fn check_dims(expected: usize, actual: usize) -> crate::Result<()> {
        if expected == actual {
            Ok(())
        } else {
            Err(SeaError::DimensionMismatch { expected, actual })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = SeaError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch: expected 3 dimensions, got 2"
        );
        assert_eq!(
            SeaError::invalid("k must be > 0").to_string(),
            "invalid argument: k must be > 0"
        );
    }

    #[test]
    fn check_dims_accepts_equal() {
        assert!(SeaError::check_dims(4, 4).is_ok());
    }

    #[test]
    fn check_dims_rejects_unequal() {
        let err = SeaError::check_dims(4, 5).unwrap_err();
        assert_eq!(
            err,
            SeaError::DimensionMismatch {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn error_trait_object_is_usable() {
        let e: Box<dyn std::error::Error> = Box::new(SeaError::NotFound("table t".into()));
        assert!(e.to_string().contains("table t"));
    }
}
