//! Analytical operators and their answers.
//!
//! §III-A of the paper: analytics over selected subspaces must cover both
//! *descriptive statistics* (count, mean, median, quantiles, …) and
//! *dependence statistics* (correlation, regression coefficients).

use serde::{Deserialize, Serialize};

use crate::{Result, SeaError};

/// The analytical operator applied to the records selected by a
/// [`crate::Region`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AggregateKind {
    /// Number of records in the subspace.
    Count,
    /// Sum of attribute `dim` over the subspace.
    Sum {
        /// Attribute to sum.
        dim: usize,
    },
    /// Mean of attribute `dim`.
    Mean {
        /// Attribute to average.
        dim: usize,
    },
    /// Population variance of attribute `dim`.
    Variance {
        /// Attribute whose variance is taken.
        dim: usize,
    },
    /// Minimum of attribute `dim`.
    Min {
        /// Attribute to minimize over.
        dim: usize,
    },
    /// Maximum of attribute `dim`.
    Max {
        /// Attribute to maximize over.
        dim: usize,
    },
    /// Median of attribute `dim`.
    Median {
        /// Attribute whose median is taken.
        dim: usize,
    },
    /// `q`-quantile (0 ≤ q ≤ 1) of attribute `dim`, linear interpolation.
    Quantile {
        /// Attribute whose quantile is taken.
        dim: usize,
        /// Quantile level in `[0, 1]`.
        q: f64,
    },
    /// Pearson correlation coefficient between attributes `x` and `y`.
    Correlation {
        /// First attribute.
        x: usize,
        /// Second attribute.
        y: usize,
    },
    /// Slope and intercept of the OLS regression of `y` on `x` within the
    /// subspace; the answer is [`AnswerValue::Pair`] `(slope, intercept)`.
    Regression {
        /// Explanatory attribute.
        x: usize,
        /// Response attribute.
        y: usize,
    },
}

impl AggregateKind {
    /// Short stable operator name (no parameters): the grouping key used
    /// by cost ledgers and stats breakdowns, where `Sum{dim:1}` and
    /// `Sum{dim:2}` should aggregate into one `sum` bucket.
    pub fn label(&self) -> &'static str {
        match self {
            AggregateKind::Count => "count",
            AggregateKind::Sum { .. } => "sum",
            AggregateKind::Mean { .. } => "mean",
            AggregateKind::Variance { .. } => "variance",
            AggregateKind::Min { .. } => "min",
            AggregateKind::Max { .. } => "max",
            AggregateKind::Median { .. } => "median",
            AggregateKind::Quantile { .. } => "quantile",
            AggregateKind::Correlation { .. } => "correlation",
            AggregateKind::Regression { .. } => "regression",
        }
    }

    /// Validates the operator against a dataset dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`SeaError::InvalidArgument`] when an attribute index is out
    /// of range or a quantile level lies outside `[0, 1]`.
    pub fn validate(&self, dims: usize) -> Result<()> {
        let check = |d: usize| {
            if d < dims {
                Ok(())
            } else {
                Err(SeaError::invalid(format!(
                    "attribute index {d} out of range for {dims}-dimensional data"
                )))
            }
        };
        match *self {
            AggregateKind::Count => Ok(()),
            AggregateKind::Sum { dim }
            | AggregateKind::Mean { dim }
            | AggregateKind::Variance { dim }
            | AggregateKind::Min { dim }
            | AggregateKind::Max { dim }
            | AggregateKind::Median { dim } => check(dim),
            AggregateKind::Quantile { dim, q } => {
                check(dim)?;
                if (0.0..=1.0).contains(&q) {
                    Ok(())
                } else {
                    Err(SeaError::invalid(format!(
                        "quantile level {q} outside [0, 1]"
                    )))
                }
            }
            AggregateKind::Correlation { x, y } | AggregateKind::Regression { x, y } => {
                check(x)?;
                check(y)
            }
        }
    }

    /// Computes the aggregate over a set of records (all records are assumed
    /// to have already passed the selection).
    ///
    /// Empty-input semantics: `Count` is 0 and `Sum` is 0; every other
    /// operator returns [`SeaError::Empty`] because it has no meaningful
    /// value on an empty subspace.
    ///
    /// # Errors
    ///
    /// [`SeaError::Empty`] on empty input (except `Count`/`Sum`), and
    /// [`SeaError::InvalidArgument`] via [`AggregateKind::validate`] when an
    /// attribute index is out of range for the first record.
    pub fn compute<'a, I>(&self, records: I) -> Result<AnswerValue>
    where
        I: IntoIterator<Item = &'a crate::Record>,
    {
        let mut iter = records.into_iter().peekable();
        if let Some(first) = iter.peek() {
            self.validate(first.dims())?;
        } else {
            return match self {
                AggregateKind::Count => Ok(AnswerValue::Scalar(0.0)),
                AggregateKind::Sum { .. } => Ok(AnswerValue::Scalar(0.0)),
                _ => Err(SeaError::Empty("aggregate over empty subspace".into())),
            };
        }

        match *self {
            AggregateKind::Count => Ok(AnswerValue::Scalar(iter.count() as f64)),
            AggregateKind::Sum { dim } => Ok(AnswerValue::Scalar(iter.map(|r| r.value(dim)).sum())),
            AggregateKind::Mean { dim } => {
                let (n, s) = iter.fold((0u64, 0.0), |(n, s), r| (n + 1, s + r.value(dim)));
                Ok(AnswerValue::Scalar(s / n as f64))
            }
            AggregateKind::Variance { dim } => {
                // Welford's online algorithm for numerical stability.
                let mut n = 0u64;
                let mut mean = 0.0;
                let mut m2 = 0.0;
                for r in iter {
                    n += 1;
                    let x = r.value(dim);
                    let delta = x - mean;
                    mean += delta / n as f64;
                    m2 += delta * (x - mean);
                }
                Ok(AnswerValue::Scalar(m2 / n as f64))
            }
            AggregateKind::Min { dim } => Ok(AnswerValue::Scalar(
                iter.map(|r| r.value(dim)).fold(f64::INFINITY, f64::min),
            )),
            AggregateKind::Max { dim } => Ok(AnswerValue::Scalar(
                iter.map(|r| r.value(dim)).fold(f64::NEG_INFINITY, f64::max),
            )),
            AggregateKind::Median { dim } => quantile_of(iter.map(|r| r.value(dim)), 0.5),
            AggregateKind::Quantile { dim, q } => quantile_of(iter.map(|r| r.value(dim)), q),
            AggregateKind::Correlation { x, y } => {
                let stats = BivariateStats::from_records(iter, x, y);
                stats.correlation().map(AnswerValue::Scalar)
            }
            AggregateKind::Regression { x, y } => {
                let stats = BivariateStats::from_records(iter, x, y);
                let (slope, intercept) = stats.ols_line()?;
                Ok(AnswerValue::Pair(slope, intercept))
            }
        }
    }
}

fn quantile_of(values: impl Iterator<Item = f64>, q: f64) -> Result<AnswerValue> {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return Err(SeaError::Empty("quantile over empty subspace".into()));
    }
    // total_cmp: NaNs sort to the ends instead of panicking, so a poisoned
    // input yields a (NaN) answer rather than aborting the query path.
    v.sort_by(f64::total_cmp);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(AnswerValue::Scalar(v[lo] + (v[hi] - v[lo]) * frac))
}

/// Running bivariate sufficient statistics: the basis of the correlation
/// and regression operators, and of the mergeable per-partition partial
/// aggregates used by the distributed executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BivariateStats {
    /// Number of observations.
    pub n: u64,
    /// Σx.
    pub sum_x: f64,
    /// Σy.
    pub sum_y: f64,
    /// Σx².
    pub sum_xx: f64,
    /// Σy².
    pub sum_yy: f64,
    /// Σxy.
    pub sum_xy: f64,
}

impl BivariateStats {
    /// Accumulates one observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_yy += y * y;
        self.sum_xy += x * y;
    }

    /// Builds the statistics from record attributes `x` and `y`.
    pub fn from_records<'a, I>(records: I, x: usize, y: usize) -> Self
    where
        I: IntoIterator<Item = &'a crate::Record>,
    {
        let mut s = BivariateStats::default();
        for r in records {
            s.push(r.value(x), r.value(y));
        }
        s
    }

    /// Merges another partial aggregate into this one (the distributed
    /// combine step).
    pub fn merge(&mut self, other: &BivariateStats) {
        self.n += other.n;
        self.sum_x += other.sum_x;
        self.sum_y += other.sum_y;
        self.sum_xx += other.sum_xx;
        self.sum_yy += other.sum_yy;
        self.sum_xy += other.sum_xy;
    }

    /// Pearson correlation coefficient.
    ///
    /// # Errors
    ///
    /// [`SeaError::Empty`] with fewer than 2 observations, and
    /// [`SeaError::Model`] when either variable has zero variance.
    pub fn correlation(&self) -> Result<f64> {
        if self.n < 2 {
            return Err(SeaError::Empty(
                "correlation requires at least 2 observations".into(),
            ));
        }
        let n = self.n as f64;
        let cov = self.sum_xy - self.sum_x * self.sum_y / n;
        let var_x = self.sum_xx - self.sum_x * self.sum_x / n;
        let var_y = self.sum_yy - self.sum_y * self.sum_y / n;
        if var_x <= 0.0 || var_y <= 0.0 {
            return Err(SeaError::Model(
                "correlation undefined: a variable has zero variance".into(),
            ));
        }
        Ok(cov / (var_x * var_y).sqrt())
    }

    /// OLS regression line `(slope, intercept)` of y on x.
    ///
    /// # Errors
    ///
    /// [`SeaError::Empty`] with fewer than 2 observations, and
    /// [`SeaError::Model`] when x has zero variance.
    pub fn ols_line(&self) -> Result<(f64, f64)> {
        if self.n < 2 {
            return Err(SeaError::Empty(
                "regression requires at least 2 observations".into(),
            ));
        }
        let n = self.n as f64;
        let var_x = self.sum_xx - self.sum_x * self.sum_x / n;
        if var_x <= 0.0 {
            return Err(SeaError::Model(
                "regression undefined: x has zero variance".into(),
            ));
        }
        let cov = self.sum_xy - self.sum_x * self.sum_y / n;
        let slope = cov / var_x;
        let intercept = (self.sum_y - slope * self.sum_x) / n;
        Ok((slope, intercept))
    }
}

/// The answer to an analytical query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AnswerValue {
    /// A single scalar (count, mean, quantile, correlation, …).
    Scalar(f64),
    /// A pair, e.g. `(slope, intercept)` for regression queries.
    Pair(f64, f64),
}

impl AnswerValue {
    /// The scalar value, if this answer is a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            AnswerValue::Scalar(v) => Some(*v),
            AnswerValue::Pair(..) => None,
        }
    }

    /// The pair value, if this answer is a pair.
    pub fn as_pair(&self) -> Option<(f64, f64)> {
        match self {
            AnswerValue::Pair(a, b) => Some((*a, *b)),
            AnswerValue::Scalar(_) => None,
        }
    }

    /// Relative error of this (predicted) answer against a ground-truth
    /// answer, per component, with the usual `max(|truth|, ε)` guard.
    /// For pairs the maximum of the two component errors is returned.
    pub fn relative_error(&self, truth: &AnswerValue) -> f64 {
        fn rel(pred: f64, truth: f64) -> f64 {
            (pred - truth).abs() / truth.abs().max(1e-9)
        }
        match (self, truth) {
            (AnswerValue::Scalar(p), AnswerValue::Scalar(t)) => rel(*p, *t),
            (AnswerValue::Pair(p1, p2), AnswerValue::Pair(t1, t2)) => {
                rel(*p1, *t1).max(rel(*p2, *t2))
            }
            _ => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Record;

    fn recs(vals: &[[f64; 2]]) -> Vec<Record> {
        vals.iter()
            .enumerate()
            .map(|(i, v)| Record::new(i as u64, v.to_vec()))
            .collect()
    }

    #[test]
    fn count_sum_mean() {
        let r = recs(&[[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]]);
        assert_eq!(
            AggregateKind::Count.compute(&r).unwrap(),
            AnswerValue::Scalar(3.0)
        );
        assert_eq!(
            AggregateKind::Sum { dim: 0 }.compute(&r).unwrap(),
            AnswerValue::Scalar(6.0)
        );
        assert_eq!(
            AggregateKind::Mean { dim: 1 }.compute(&r).unwrap(),
            AnswerValue::Scalar(20.0)
        );
    }

    #[test]
    fn empty_semantics() {
        let empty: Vec<Record> = vec![];
        assert_eq!(
            AggregateKind::Count.compute(&empty).unwrap(),
            AnswerValue::Scalar(0.0)
        );
        assert_eq!(
            AggregateKind::Sum { dim: 0 }.compute(&empty).unwrap(),
            AnswerValue::Scalar(0.0)
        );
        assert!(matches!(
            AggregateKind::Mean { dim: 0 }.compute(&empty),
            Err(SeaError::Empty(_))
        ));
        assert!(matches!(
            AggregateKind::Median { dim: 0 }.compute(&empty),
            Err(SeaError::Empty(_))
        ));
    }

    #[test]
    fn nan_values_never_panic_order_statistics() {
        // A poisoned attribute must not abort the query path: quantiles
        // over NaN-laden data answer (possibly with NaN) instead of
        // panicking in the sort comparator.
        let r = recs(&[[1.0, 10.0], [f64::NAN, 20.0], [3.0, 30.0]]);
        let med = AggregateKind::Median { dim: 0 }.compute(&r).unwrap();
        assert!(med.as_scalar().is_some());
        let q = AggregateKind::Quantile { dim: 0, q: 0.9 }.compute(&r);
        assert!(q.is_ok());
        // The clean attribute is unaffected.
        assert_eq!(
            AggregateKind::Median { dim: 1 }.compute(&r).unwrap(),
            AnswerValue::Scalar(20.0)
        );
    }

    #[test]
    fn variance_matches_definition() {
        let r = recs(&[
            [2.0, 0.0],
            [4.0, 0.0],
            [4.0, 0.0],
            [4.0, 0.0],
            [5.0, 0.0],
            [5.0, 0.0],
            [7.0, 0.0],
            [9.0, 0.0],
        ]);
        // Classic example: population variance 4.
        let v = AggregateKind::Variance { dim: 0 }
            .compute(&r)
            .unwrap()
            .as_scalar()
            .unwrap();
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let r = recs(&[[3.0, -1.0], [1.0, 5.0], [2.0, 2.0]]);
        assert_eq!(
            AggregateKind::Min { dim: 0 }.compute(&r).unwrap(),
            AnswerValue::Scalar(1.0)
        );
        assert_eq!(
            AggregateKind::Max { dim: 1 }.compute(&r).unwrap(),
            AnswerValue::Scalar(5.0)
        );
    }

    #[test]
    fn median_and_quantiles_interpolate() {
        let r = recs(&[[1.0, 0.0], [2.0, 0.0], [3.0, 0.0], [4.0, 0.0]]);
        assert_eq!(
            AggregateKind::Median { dim: 0 }.compute(&r).unwrap(),
            AnswerValue::Scalar(2.5)
        );
        assert_eq!(
            AggregateKind::Quantile { dim: 0, q: 0.0 }
                .compute(&r)
                .unwrap(),
            AnswerValue::Scalar(1.0)
        );
        assert_eq!(
            AggregateKind::Quantile { dim: 0, q: 1.0 }
                .compute(&r)
                .unwrap(),
            AnswerValue::Scalar(4.0)
        );
        assert_eq!(
            AggregateKind::Quantile { dim: 0, q: 0.25 }
                .compute(&r)
                .unwrap(),
            AnswerValue::Scalar(1.75)
        );
    }

    #[test]
    fn correlation_perfect_lines() {
        let pos = recs(&[[1.0, 2.0], [2.0, 4.0], [3.0, 6.0]]);
        let c = AggregateKind::Correlation { x: 0, y: 1 }
            .compute(&pos)
            .unwrap()
            .as_scalar()
            .unwrap();
        assert!((c - 1.0).abs() < 1e-12);
        let neg = recs(&[[1.0, -2.0], [2.0, -4.0], [3.0, -6.0]]);
        let c = AggregateKind::Correlation { x: 0, y: 1 }
            .compute(&neg)
            .unwrap()
            .as_scalar()
            .unwrap();
        assert!((c + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_degenerate_cases() {
        let flat = recs(&[[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]]);
        assert!(matches!(
            AggregateKind::Correlation { x: 0, y: 1 }.compute(&flat),
            Err(SeaError::Model(_))
        ));
        let one = recs(&[[1.0, 1.0]]);
        assert!(matches!(
            AggregateKind::Correlation { x: 0, y: 1 }.compute(&one),
            Err(SeaError::Empty(_))
        ));
    }

    #[test]
    fn regression_recovers_line() {
        // y = 3x + 1 exactly.
        let r = recs(&[[0.0, 1.0], [1.0, 4.0], [2.0, 7.0], [3.0, 10.0]]);
        let (slope, intercept) = AggregateKind::Regression { x: 0, y: 1 }
            .compute(&r)
            .unwrap()
            .as_pair()
            .unwrap();
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bivariate_merge_equals_single_pass() {
        let all = recs(&[[1.0, 2.0], [2.0, 3.0], [3.0, 5.0], [4.0, 4.0], [5.0, 8.0]]);
        let whole = BivariateStats::from_records(&all, 0, 1);
        let mut merged = BivariateStats::from_records(&all[..2], 0, 1);
        merged.merge(&BivariateStats::from_records(&all[2..], 0, 1));
        assert_eq!(whole, merged);
        assert!((whole.correlation().unwrap() - merged.correlation().unwrap()).abs() < 1e-15);
    }

    #[test]
    fn validate_rejects_bad_args() {
        assert!(AggregateKind::Mean { dim: 3 }.validate(3).is_err());
        assert!(AggregateKind::Quantile { dim: 0, q: 1.5 }
            .validate(1)
            .is_err());
        assert!(AggregateKind::Correlation { x: 0, y: 2 }
            .validate(2)
            .is_err());
        assert!(AggregateKind::Regression { x: 0, y: 1 }.validate(2).is_ok());
    }

    #[test]
    fn relative_error() {
        let p = AnswerValue::Scalar(110.0);
        let t = AnswerValue::Scalar(100.0);
        assert!((p.relative_error(&t) - 0.1).abs() < 1e-12);
        let pp = AnswerValue::Pair(1.0, 2.0);
        let tt = AnswerValue::Pair(1.0, 1.0);
        assert!((pp.relative_error(&tt) - 1.0).abs() < 1e-12);
        assert_eq!(p.relative_error(&tt), f64::INFINITY);
    }
}
