//! Data records: identified rows of a multi-dimensional dataset.

use serde::{Deserialize, Serialize};

use crate::Point;

/// Unique identifier of a record within a dataset.
pub type RecordId = u64;

/// A row of a multi-dimensional dataset: an id plus a dense coordinate
/// vector. Records are what the simulated storage layer stores in blocks,
/// what selection regions filter, and what analytical operators aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Unique id of this record.
    pub id: RecordId,
    /// The record's values, one per dimension/attribute.
    pub values: Vec<f64>,
}

impl Record {
    /// Creates a record.
    pub fn new(id: RecordId, values: Vec<f64>) -> Self {
        Record { id, values }
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Value of attribute `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dims()`.
    pub fn value(&self, d: usize) -> f64 {
        self.values[d]
    }

    /// Views the record's values as a [`Point`] (clones the values).
    pub fn to_point(&self) -> Point {
        Point::new(self.values.clone())
    }

    /// Approximate serialized size of this record in bytes, used by the
    /// simulated storage layer's cost accounting (8 bytes per value plus an
    /// 8-byte id).
    pub fn storage_bytes(&self) -> u64 {
        8 + 8 * self.values.len() as u64
    }
}

impl AsRef<[f64]> for Record {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = Record::new(7, vec![1.0, 2.0, 3.0]);
        assert_eq!(r.id, 7);
        assert_eq!(r.dims(), 3);
        assert_eq!(r.value(1), 2.0);
        assert_eq!(r.to_point().coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn storage_bytes_counts_id_and_values() {
        let r = Record::new(0, vec![0.0; 4]);
        assert_eq!(r.storage_bytes(), 8 + 32);
        let empty = Record::new(0, vec![]);
        assert_eq!(empty.storage_bytes(), 8);
    }
}
