//! The analytical query: a selection region plus an analytical operator.

use serde::{Deserialize, Serialize};

use crate::{AggregateKind, Record, Region, Result};

/// An analytical query as defined in §III-A of the paper: "(a) selection
/// operators, which identify a data subspace of interest and (b) an
/// analytical operator over the data items within this data subspace".
///
/// Every engine in the workspace — the exact executor, the sampling and
/// synopsis baselines, and the data-less SEA agent — consumes this same
/// type, so their answers are directly comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticalQuery {
    /// The data subspace of interest.
    pub region: Region,
    /// The analytical operator applied within the subspace.
    pub aggregate: AggregateKind,
}

impl AnalyticalQuery {
    /// Creates a query.
    pub fn new(region: Region, aggregate: AggregateKind) -> Self {
        AnalyticalQuery { region, aggregate }
    }

    /// Computes the exact answer over an in-memory record slice (the
    /// reference implementation every engine is tested against).
    ///
    /// # Errors
    ///
    /// Propagates aggregate-computation errors (e.g. empty subspace for
    /// operators undefined on it).
    pub fn answer_exact(&self, records: &[Record]) -> Result<crate::AnswerValue> {
        let selected: Vec<&Record> = records
            .iter()
            .filter(|r| self.region.contains_record(r))
            .collect();
        self.aggregate.compute(selected)
    }

    /// The query's embedding in query space: region feature vector plus the
    /// operator discriminant is *not* included — the SEA agent maintains one
    /// model pool per operator kind, so the vector only encodes geometry.
    pub fn to_query_vector(&self) -> Vec<f64> {
        self.region.to_query_vector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnswerValue, Point, Rect};

    #[test]
    fn exact_answer_filters_then_aggregates() {
        let records = vec![
            Record::new(0, vec![0.5, 10.0]),
            Record::new(1, vec![1.5, 20.0]),
            Record::new(2, vec![0.7, 30.0]),
        ];
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![0.0, 0.0], vec![1.0, 100.0]).unwrap()),
            AggregateKind::Count,
        );
        assert_eq!(q.answer_exact(&records).unwrap(), AnswerValue::Scalar(2.0));
        let q_mean = AnalyticalQuery::new(q.region.clone(), AggregateKind::Mean { dim: 1 });
        assert_eq!(
            q_mean.answer_exact(&records).unwrap(),
            AnswerValue::Scalar(20.0)
        );
    }

    #[test]
    fn query_vector_is_region_embedding() {
        let q = AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![1.0, 2.0]), &[0.5, 0.5]).unwrap()),
            AggregateKind::Count,
        );
        assert_eq!(q.to_query_vector(), vec![1.0, 2.0, 0.5, 0.5]);
    }
}
