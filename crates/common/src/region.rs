//! Query selection regions: the "subspace of interest" half of an
//! analytical query.
//!
//! The paper (§III-A) identifies three selection operators that matter for
//! exploratory analytics: **range** queries (hyper-rectangles), **radius**
//! queries (hyper-spheres), and **k-nearest-neighbour** selections. All
//! three are represented by [`Region`].

use serde::{Deserialize, Serialize};

use crate::{Point, Result, SeaError};

/// An axis-aligned hyper-rectangle, defined by inclusive lower and upper
/// bounds per dimension.
///
/// # Examples
///
/// ```
/// use sea_common::{Point, Rect};
///
/// let r = Rect::new(vec![0.0, 0.0], vec![2.0, 2.0]).unwrap();
/// assert!(r.contains(&Point::new(vec![1.0, 1.0])));
/// assert!(!r.contains(&Point::new(vec![3.0, 1.0])));
/// assert_eq!(r.volume(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    /// Creates a rectangle from per-dimension bounds.
    ///
    /// # Errors
    ///
    /// Returns [`SeaError::DimensionMismatch`] if `lo` and `hi` have
    /// different lengths, and [`SeaError::InvalidArgument`] if any
    /// `lo[d] > hi[d]` or any bound is not finite.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        SeaError::check_dims(lo.len(), hi.len())?;
        for d in 0..lo.len() {
            if !lo[d].is_finite() || !hi[d].is_finite() {
                return Err(SeaError::invalid("rectangle bounds must be finite"));
            }
            if lo[d] > hi[d] {
                return Err(SeaError::invalid(format!(
                    "rectangle lower bound {} exceeds upper bound {} in dimension {d}",
                    lo[d], hi[d]
                )));
            }
        }
        Ok(Rect { lo, hi })
    }

    /// The rectangle centred at `center` with half-width `extents[d]` in
    /// each dimension.
    ///
    /// # Errors
    ///
    /// Returns an error when dimensionalities differ or any extent is
    /// negative or non-finite.
    pub fn centered(center: &Point, extents: &[f64]) -> Result<Self> {
        SeaError::check_dims(center.dims(), extents.len())?;
        if extents.iter().any(|e| !e.is_finite() || *e < 0.0) {
            return Err(SeaError::invalid("extents must be finite and non-negative"));
        }
        let lo = center
            .coords()
            .iter()
            .zip(extents)
            .map(|(c, e)| c - e)
            .collect();
        let hi = center
            .coords()
            .iter()
            .zip(extents)
            .map(|(c, e)| c + e)
            .collect();
        Rect::new(lo, hi)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Per-dimension lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Per-dimension upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// The rectangle's centre.
    pub fn center(&self) -> Point {
        Point::new(
            self.lo
                .iter()
                .zip(&self.hi)
                .map(|(l, h)| (l + h) / 2.0)
                .collect(),
        )
    }

    /// Per-dimension half-widths.
    pub fn extents(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l) / 2.0)
            .collect()
    }

    /// Whether `p` lies inside (inclusive) this rectangle. Points of a
    /// different dimensionality are never contained.
    pub fn contains(&self, p: &Point) -> bool {
        p.dims() == self.dims()
            && p.coords()
                .iter()
                .enumerate()
                .all(|(d, &c)| self.lo[d] <= c && c <= self.hi[d])
    }

    /// Whether this rectangle and `other` overlap (share any point).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.dims() == other.dims()
            && (0..self.dims()).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// The intersection of this rectangle with `other`, or `None` when they
    /// do not overlap.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let lo = (0..self.dims())
            .map(|d| self.lo[d].max(other.lo[d]))
            .collect();
        let hi = (0..self.dims())
            .map(|d| self.hi[d].min(other.hi[d]))
            .collect();
        Some(Rect { lo, hi })
    }

    /// The smallest rectangle enclosing both this rectangle and `other`.
    ///
    /// # Errors
    ///
    /// Returns [`SeaError::DimensionMismatch`] on differing dimensionality.
    pub fn union(&self, other: &Rect) -> Result<Rect> {
        SeaError::check_dims(self.dims(), other.dims())?;
        let lo = (0..self.dims())
            .map(|d| self.lo[d].min(other.lo[d]))
            .collect();
        let hi = (0..self.dims())
            .map(|d| self.hi[d].max(other.hi[d]))
            .collect();
        Ok(Rect { lo, hi })
    }

    /// Whether `other` is fully inside this rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.dims() == other.dims()
            && (0..self.dims()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Hyper-volume (product of side lengths). Zero-width dimensions yield
    /// zero volume; the volume of a 0-dimensional rectangle is 1.
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Minimum Euclidean distance from `p` to this rectangle (0 when `p` is
    /// inside). Used by index structures to prune kNN search.
    pub fn min_distance(&self, p: &Point) -> Result<f64> {
        SeaError::check_dims(self.dims(), p.dims())?;
        let mut sum = 0.0;
        for (d, &c) in p.coords().iter().enumerate() {
            let gap = if c < self.lo[d] {
                self.lo[d] - c
            } else if c > self.hi[d] {
                c - self.hi[d]
            } else {
                0.0
            };
            sum += gap * gap;
        }
        Ok(sum.sqrt())
    }

    /// Fraction of this rectangle's volume that overlaps `other`
    /// (0 when disjoint, 1 when `other` covers this rectangle). Rectangles
    /// with zero volume report 0 overlap.
    pub fn overlap_fraction(&self, other: &Rect) -> f64 {
        let v = self.volume();
        if v <= 0.0 {
            return 0.0;
        }
        self.intersection(other)
            .map(|i| i.volume() / v)
            .unwrap_or(0.0)
    }
}

/// A hyper-sphere: centre plus radius. The selection region of *radius
/// queries* (§III-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ball {
    center: Point,
    radius: f64,
}

impl Ball {
    /// Creates a ball.
    ///
    /// # Errors
    ///
    /// Returns [`SeaError::InvalidArgument`] if `radius` is negative or not
    /// finite.
    pub fn new(center: Point, radius: f64) -> Result<Self> {
        if !radius.is_finite() || radius < 0.0 {
            return Err(SeaError::invalid("radius must be finite and non-negative"));
        }
        Ok(Ball { center, radius })
    }

    /// The ball's centre.
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// The ball's radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.center.dims()
    }

    /// Whether `p` lies inside (inclusive) the ball. Points of a different
    /// dimensionality are never contained.
    pub fn contains(&self, p: &Point) -> bool {
        p.dims() == self.dims()
            && self.center.distance_sq(p).expect("dims checked") <= self.radius * self.radius
    }

    /// The ball's axis-aligned bounding rectangle.
    pub fn bounding_rect(&self) -> Rect {
        let extents = vec![self.radius; self.dims()];
        Rect::centered(&self.center, &extents).expect("radius validated at construction")
    }
}

/// A query selection region: the data subspace an analytical operator is
/// applied to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Region {
    /// Range query: an axis-aligned hyper-rectangle.
    Range(Rect),
    /// Radius query: a hyper-sphere.
    Radius(Ball),
}

impl Region {
    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        match self {
            Region::Range(r) => r.dims(),
            Region::Radius(b) => b.dims(),
        }
    }

    /// Whether `p` falls inside the selection.
    pub fn contains(&self, p: &Point) -> bool {
        match self {
            Region::Range(r) => r.contains(p),
            Region::Radius(b) => b.contains(p),
        }
    }

    /// Whether the record's coordinates fall inside the selection.
    pub fn contains_record(&self, rec: &crate::Record) -> bool {
        match self {
            Region::Range(r) => {
                rec.dims() == r.dims()
                    && rec
                        .values
                        .iter()
                        .enumerate()
                        .all(|(d, &c)| r.lo()[d] <= c && c <= r.hi()[d])
            }
            Region::Radius(b) => {
                rec.dims() == b.dims() && {
                    let d2: f64 = rec
                        .values
                        .iter()
                        .zip(b.center().coords())
                        .map(|(a, c)| (a - c) * (a - c))
                        .sum();
                    d2 <= b.radius() * b.radius()
                }
            }
        }
    }

    /// Axis-aligned bounding rectangle of the selection, used for routing
    /// queries to storage partitions and index nodes.
    pub fn bounding_rect(&self) -> Rect {
        match self {
            Region::Range(r) => r.clone(),
            Region::Radius(b) => b.bounding_rect(),
        }
    }

    /// The region's centre point.
    pub fn center(&self) -> Point {
        match self {
            Region::Range(r) => r.center(),
            Region::Radius(b) => b.center().clone(),
        }
    }

    /// Hyper-volume of the selection. For balls this is the exact
    /// n-ball volume.
    pub fn volume(&self) -> f64 {
        match self {
            Region::Range(r) => r.volume(),
            Region::Radius(b) => n_ball_volume(b.dims(), b.radius()),
        }
    }

    /// Embeds the region as a fixed-length feature vector
    /// `[centre_0..centre_d, extent_0..extent_d]` — the representation the
    /// SEA agent quantizes (query-space quantization, RT1). Radius queries
    /// embed with `extent_d = radius` in every dimension.
    pub fn to_query_vector(&self) -> Vec<f64> {
        match self {
            Region::Range(r) => {
                let mut v = r.center().into_coords();
                v.extend(r.extents());
                v
            }
            Region::Radius(b) => {
                let mut v = b.center().coords().to_vec();
                v.extend(std::iter::repeat_n(b.radius(), b.dims()));
                v
            }
        }
    }
}

/// Volume of an n-dimensional ball of radius `r`, via the standard
/// recurrence `V_n = V_{n-2} · 2πr²/n` with `V_0 = 1`, `V_1 = 2r`.
pub fn n_ball_volume(dims: usize, r: f64) -> f64 {
    match dims {
        0 => 1.0,
        1 => 2.0 * r,
        n => n_ball_volume(n - 2, r) * 2.0 * std::f64::consts::PI * r * r / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Rect {
        Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap()
    }

    #[test]
    fn rect_construction_validates() {
        assert!(Rect::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(Rect::new(vec![2.0], vec![1.0]).is_err());
        assert!(Rect::new(vec![f64::NAN], vec![1.0]).is_err());
        assert!(Rect::new(vec![0.0], vec![f64::INFINITY]).is_err());
        assert!(Rect::new(vec![1.0], vec![1.0]).is_ok());
    }

    #[test]
    fn rect_contains_is_inclusive() {
        let r = unit_square();
        assert!(r.contains(&Point::new(vec![0.0, 0.0])));
        assert!(r.contains(&Point::new(vec![1.0, 1.0])));
        assert!(!r.contains(&Point::new(vec![1.0 + 1e-12, 0.5])));
        assert!(!r.contains(&Point::new(vec![0.5])), "wrong dims");
    }

    #[test]
    fn rect_centered_roundtrips() {
        let c = Point::new(vec![5.0, -3.0]);
        let r = Rect::centered(&c, &[2.0, 0.5]).unwrap();
        assert_eq!(r.center(), c);
        assert_eq!(r.extents(), vec![2.0, 0.5]);
        assert!(Rect::centered(&c, &[-1.0, 0.0]).is_err());
    }

    #[test]
    fn rect_intersection_and_union() {
        let a = unit_square();
        let b = Rect::new(vec![0.5, 0.5], vec![2.0, 2.0]).unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.lo(), &[0.5, 0.5]);
        assert_eq!(i.hi(), &[1.0, 1.0]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.lo(), &[0.0, 0.0]);
        assert_eq!(u.hi(), &[2.0, 2.0]);

        let far = Rect::new(vec![5.0, 5.0], vec![6.0, 6.0]).unwrap();
        assert!(a.intersection(&far).is_none());
        assert!(!a.intersects(&far));
    }

    #[test]
    fn rect_touching_edges_intersect() {
        let a = unit_square();
        let edge = Rect::new(vec![1.0, 0.0], vec![2.0, 1.0]).unwrap();
        assert!(a.intersects(&edge));
        assert_eq!(a.intersection(&edge).unwrap().volume(), 0.0);
    }

    #[test]
    fn rect_volume_and_overlap_fraction() {
        let a = unit_square();
        let b = Rect::new(vec![0.5, 0.0], vec![1.5, 1.0]).unwrap();
        assert_eq!(a.volume(), 1.0);
        assert!((a.overlap_fraction(&b) - 0.5).abs() < 1e-12);
        let zero = Rect::new(vec![0.0, 0.0], vec![0.0, 1.0]).unwrap();
        assert_eq!(zero.overlap_fraction(&a), 0.0);
    }

    #[test]
    fn rect_contains_rect() {
        let outer = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
        let inner = unit_square();
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn rect_min_distance() {
        let r = unit_square();
        assert_eq!(r.min_distance(&Point::new(vec![0.5, 0.5])).unwrap(), 0.0);
        assert_eq!(r.min_distance(&Point::new(vec![2.0, 1.0])).unwrap(), 1.0);
        let d = r.min_distance(&Point::new(vec![2.0, 2.0])).unwrap();
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn ball_contains_and_bounding_rect() {
        let b = Ball::new(Point::new(vec![0.0, 0.0]), 1.0).unwrap();
        assert!(b.contains(&Point::new(vec![0.6, 0.6])));
        assert!(!b.contains(&Point::new(vec![0.8, 0.8])));
        assert!(
            b.contains(&Point::new(vec![1.0, 0.0])),
            "boundary inclusive"
        );
        let br = b.bounding_rect();
        assert_eq!(br.lo(), &[-1.0, -1.0]);
        assert_eq!(br.hi(), &[1.0, 1.0]);
        assert!(Ball::new(Point::zeros(2), -0.1).is_err());
    }

    #[test]
    fn region_dispatch() {
        let range = Region::Range(unit_square());
        let radius = Region::Radius(Ball::new(Point::new(vec![0.0, 0.0]), 2.0).unwrap());
        let p = Point::new(vec![0.5, 0.5]);
        assert!(range.contains(&p));
        assert!(radius.contains(&p));
        assert_eq!(range.dims(), 2);
        assert_eq!(radius.bounding_rect().volume(), 16.0);
        let rec = crate::Record::new(1, vec![0.5, 0.5]);
        assert!(range.contains_record(&rec));
        assert!(radius.contains_record(&rec));
    }

    #[test]
    fn region_volume_ball_matches_formula() {
        let b = Region::Radius(Ball::new(Point::zeros(2), 2.0).unwrap());
        assert!((b.volume() - std::f64::consts::PI * 4.0).abs() < 1e-9);
        let b3 = Region::Radius(Ball::new(Point::zeros(3), 1.0).unwrap());
        assert!((b3.volume() - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-9);
        assert_eq!(n_ball_volume(0, 5.0), 1.0);
        assert_eq!(n_ball_volume(1, 5.0), 10.0);
    }

    #[test]
    fn query_vector_embedding() {
        let r = Rect::new(vec![0.0, 2.0], vec![2.0, 6.0]).unwrap();
        assert_eq!(Region::Range(r).to_query_vector(), vec![1.0, 4.0, 1.0, 2.0]);
        let b = Ball::new(Point::new(vec![1.0, 1.0]), 0.5).unwrap();
        assert_eq!(
            Region::Radius(b).to_query_vector(),
            vec![1.0, 1.0, 0.5, 0.5]
        );
    }
}
