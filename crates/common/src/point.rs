//! Multi-dimensional points and distance functions.

use serde::{Deserialize, Serialize};

use crate::{Result, SeaError};

/// A point in a multi-dimensional real-valued data space.
///
/// `Point` is the coordinate half of a [`crate::Record`] and the geometric
/// currency of the whole workspace: query regions are defined around points,
/// index structures partition point sets, and the SEA agent's query-space
/// quantization clusters queries embedded as points.
///
/// # Examples
///
/// ```
/// use sea_common::Point;
///
/// let a = Point::new(vec![0.0, 0.0]);
/// let b = Point::new(vec![3.0, 4.0]);
/// assert_eq!(a.distance(&b).unwrap(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Point { coords }
    }

    /// Creates the origin of a `dims`-dimensional space.
    pub fn zeros(dims: usize) -> Self {
        Point {
            coords: vec![0.0; dims],
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Mutable coordinates.
    pub fn coords_mut(&mut self) -> &mut [f64] {
        &mut self.coords
    }

    /// Consumes the point, returning its coordinate vector.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }

    /// Coordinate in dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dims()`.
    pub fn coord(&self, d: usize) -> f64 {
        self.coords[d]
    }

    /// Euclidean (L2) distance to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`SeaError::DimensionMismatch`] if dimensionalities differ.
    pub fn distance(&self, other: &Point) -> Result<f64> {
        Ok(self.distance_sq(other)?.sqrt())
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed, e.g. in kNN search).
    ///
    /// # Errors
    ///
    /// Returns [`SeaError::DimensionMismatch`] if dimensionalities differ.
    pub fn distance_sq(&self, other: &Point) -> Result<f64> {
        SeaError::check_dims(self.dims(), other.dims())?;
        Ok(self
            .coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`SeaError::DimensionMismatch`] if dimensionalities differ.
    pub fn manhattan_distance(&self, other: &Point) -> Result<f64> {
        SeaError::check_dims(self.dims(), other.dims())?;
        Ok(self
            .coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b).abs())
            .sum())
    }

    /// Chebyshev (L∞) distance to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`SeaError::DimensionMismatch`] if dimensionalities differ.
    pub fn chebyshev_distance(&self, other: &Point) -> Result<f64> {
        SeaError::check_dims(self.dims(), other.dims())?;
        Ok(self
            .coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::new(coords.to_vec())
    }
}

impl AsRef<[f64]> for Point {
    fn as_ref(&self) -> &[f64] {
        &self.coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_distance_345() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(a.distance(&b).unwrap(), 5.0);
        assert_eq!(a.distance_sq(&b).unwrap(), 25.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(vec![1.5, -2.0, 7.0]);
        let b = Point::new(vec![-1.0, 0.5, 3.0]);
        assert_eq!(a.distance(&b).unwrap(), b.distance(&a).unwrap());
        assert_eq!(a.distance(&a).unwrap(), 0.0);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, -4.0]);
        assert_eq!(a.manhattan_distance(&b).unwrap(), 7.0);
        assert_eq!(a.chebyshev_distance(&b).unwrap(), 4.0);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![1.0]);
        assert!(matches!(
            a.distance(&b),
            Err(SeaError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn conversions() {
        let p: Point = vec![1.0, 2.0].into();
        assert_eq!(p.coords(), &[1.0, 2.0]);
        let q: Point = (&[3.0, 4.0][..]).into();
        assert_eq!(q.coord(1), 4.0);
        let r: &[f64] = p.as_ref();
        assert_eq!(r, &[1.0, 2.0]);
        assert_eq!(q.into_coords(), vec![3.0, 4.0]);
    }

    #[test]
    fn zeros_builds_origin() {
        let o = Point::zeros(5);
        assert_eq!(o.dims(), 5);
        assert!(o.coords().iter().all(|&c| c == 0.0));
    }
}
