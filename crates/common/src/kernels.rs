//! Vectorizable scan kernels over columnar data.
//!
//! The storage layer stores blocks column-major (one `Vec<f64>` per
//! attribute); query engines evaluate predicates as **selection bitmaps**
//! over those columns and only then touch the selected values. The split
//! matters twice over:
//!
//! * Predicate evaluation is a branchless compare loop over a contiguous
//!   slice — the shape the compiler autovectorizes — instead of a
//!   pointer-chasing walk over row structs.
//! * The aggregate folds that follow are *serial* replays of the exact
//!   row-order arithmetic (`sum += v`, Welford updates, `min.min(v)`),
//!   so every answer stays bit-identical to a row-at-a-time scan. The
//!   speedup comes from filtering cheaply, not from reordering floats.
//!
//! The same bitmap type doubles as a per-column **validity bitmap**
//! (NaN = missing) in block metadata.

use serde::{Deserialize, Serialize};

use crate::BivariateStats;

/// A fixed-length bitmap over the rows of a block: bit `i` set means row
/// `i` is selected (or, as a validity bitmap, present/non-NaN).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionMask {
    words: Vec<u64>,
    len: usize,
}

impl SelectionMask {
    /// An all-clear mask over `len` rows.
    pub fn none(len: usize) -> Self {
        SelectionMask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// An all-set mask over `len` rows (trailing bits stay clear).
    pub fn all(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        SelectionMask { words, len }
    }

    /// The validity bitmap of a column: bit `i` set iff `col[i]` is not
    /// NaN (missing values are encoded as NaN).
    pub fn from_valid(col: &[f64]) -> Self {
        let mut m = SelectionMask::none(col.len());
        for (w, chunk) in m.words.iter_mut().zip(col.chunks(64)) {
            let mut bits = 0u64;
            for (j, &v) in chunk.iter().enumerate() {
                bits |= u64::from(!v.is_nan()) << j;
            }
            *w = bits;
        }
        m
    }

    /// Number of rows the mask covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of selected rows (popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no row is selected.
    pub fn is_none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether row `i` is selected.
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Selects row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "row {i} out of range for mask of {}",
            self.len
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Keeps only rows whose `col` value lies in `[lo, hi]` (inclusive).
    /// NaN values never satisfy the predicate, so missing data drops out
    /// of the selection for free. The inner loop is a branchless compare
    /// over a 64-row chunk — the autovectorizable core of a range scan.
    pub fn retain_range(&mut self, col: &[f64], lo: f64, hi: f64) {
        for (w, chunk) in self.words.iter_mut().zip(col.chunks(64)) {
            if *w == 0 {
                continue;
            }
            let mut keep = 0u64;
            for (j, &v) in chunk.iter().enumerate() {
                keep |= u64::from(lo <= v && v <= hi) << j;
            }
            *w &= keep;
        }
    }

    /// Intersects with another mask of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn intersect(&mut self, other: &SelectionMask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Calls `f` with every selected row index in ascending order. Dense
    /// words (all 64 rows selected) take a straight-line path; sparse
    /// words iterate set bits only.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &w) in self.words.iter().enumerate() {
            if w == u64::MAX {
                let base = wi * 64;
                for j in 0..64 {
                    f(base + j);
                }
                continue;
            }
            let mut bits = w;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                f(wi * 64 + j);
                bits &= bits - 1;
            }
        }
    }

    /// The selected row indices, ascending.
    pub fn to_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        self.for_each_set(|i| out.push(i));
        out
    }
}

/// Rows of `cols` (column-major, `len` rows each) inside the inclusive
/// box `[lo, hi]`: the selection-bitmap form of a range predicate.
/// Callers are responsible for the dimensionality check (`cols.len() ==
/// lo.len()`); rows with NaN in any dimension are never selected.
pub fn range_mask(cols: &[Vec<f64>], len: usize, lo: &[f64], hi: &[f64]) -> SelectionMask {
    let mut m = SelectionMask::all(len);
    for (d, col) in cols.iter().enumerate() {
        if m.is_none_set() {
            break;
        }
        m.retain_range(col, lo[d], hi[d]);
    }
    m
}

/// Rows of `cols` within Euclidean distance `radius` of `center`.
/// Squared distances accumulate per row in dimension order from `0.0` —
/// the same float grouping as a row-at-a-time
/// `values.iter().zip(center).map(|(v, c)| (v - c)²).sum::<f64>()` — so
/// the selected set is bit-identical to the row path. NaN distances
/// never match.
pub fn ball_mask(cols: &[Vec<f64>], len: usize, center: &[f64], radius: f64) -> SelectionMask {
    let mut d2 = vec![0.0f64; len];
    for (col, &c) in cols.iter().zip(center) {
        for (acc, &v) in d2.iter_mut().zip(col) {
            let diff = v - c;
            *acc += diff * diff;
        }
    }
    let r2 = radius * radius;
    let mut m = SelectionMask::none(len);
    for (w, chunk) in m.words.iter_mut().zip(d2.chunks(64)) {
        let mut bits = 0u64;
        for (j, &x) in chunk.iter().enumerate() {
            bits |= u64::from(x <= r2) << j;
        }
        *w = bits;
    }
    m
}

/// Folds `sum += v; sum_sq += v * v` over the selected values of `col`
/// in row order — the exact arithmetic of a row-at-a-time sum partial.
pub fn fold_sum_sq(col: &[f64], mask: &SelectionMask, sum: &mut f64, sum_sq: &mut f64) {
    mask.for_each_set(|i| {
        let v = col[i];
        *sum += v;
        *sum_sq += v * v;
    });
}

/// Folds Welford's online moment update over the selected values of
/// `col` in row order (bit-identical to the row-at-a-time variance
/// partial).
pub fn fold_welford(
    col: &[f64],
    mask: &SelectionMask,
    count: &mut u64,
    mean: &mut f64,
    m2: &mut f64,
) {
    mask.for_each_set(|i| {
        let v = col[i];
        *count += 1;
        let delta = v - *mean;
        *mean += delta / *count as f64;
        *m2 += delta * (v - *mean);
    });
}

/// Folds `min = min.min(v); max = max.max(v)` over the selected values
/// of `col` in row order.
pub fn fold_min_max(col: &[f64], mask: &SelectionMask, min: &mut f64, max: &mut f64) {
    mask.for_each_set(|i| {
        let v = col[i];
        *min = min.min(v);
        *max = max.max(v);
    });
}

/// Accumulates the selected `(x, y)` pairs into `stats` in row order.
pub fn fold_bivariate(xs: &[f64], ys: &[f64], mask: &SelectionMask, stats: &mut BivariateStats) {
    mask.for_each_set(|i| stats.push(xs[i], ys[i]));
}

/// Appends the selected values of `col` to `out` in row order (the value
/// gather that follows predicate evaluation).
pub fn gather(col: &[f64], mask: &SelectionMask, out: &mut Vec<f64>) {
    mask.for_each_set(|i| out.push(col[i]));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none_masks() {
        let a = SelectionMask::all(70);
        assert_eq!(a.len(), 70);
        assert_eq!(a.count(), 70);
        assert!(a.get(0) && a.get(69) && !a.get(70));
        let n = SelectionMask::none(70);
        assert_eq!(n.count(), 0);
        assert!(n.is_none_set());
        assert_eq!(SelectionMask::all(0).count(), 0);
        assert_eq!(SelectionMask::all(64).count(), 64);
    }

    #[test]
    fn set_and_iterate_in_order() {
        let mut m = SelectionMask::none(130);
        for i in [0, 63, 64, 127, 129] {
            m.set(i);
        }
        assert_eq!(m.to_indices(), vec![0, 63, 64, 127, 129]);
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn retain_range_excludes_nan_and_out_of_range() {
        let col = vec![1.0, 5.0, f64::NAN, 3.0, 10.0];
        let mut m = SelectionMask::all(5);
        m.retain_range(&col, 2.0, 9.0);
        assert_eq!(m.to_indices(), vec![1, 3]);
    }

    #[test]
    fn range_mask_over_two_columns() {
        let cols = vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 20.0, 30.0, 40.0]];
        let m = range_mask(&cols, 4, &[2.0, 0.0], &[4.0, 35.0]);
        assert_eq!(m.to_indices(), vec![1, 2]);
    }

    #[test]
    fn ball_mask_matches_row_distance() {
        let cols = vec![vec![0.0, 3.0, 1.0, f64::NAN], vec![0.0, 4.0, 1.0, 0.0]];
        let m = ball_mask(&cols, 4, &[0.0, 0.0], 5.0);
        // (0,0) at 0, (3,4) at exactly 5 (boundary inclusive), (1,1) at √2;
        // the NaN row never matches.
        assert_eq!(m.to_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn validity_bitmap_flags_nan() {
        let v = SelectionMask::from_valid(&[1.0, f64::NAN, 3.0]);
        assert_eq!(v.to_indices(), vec![0, 2]);
        assert_eq!(SelectionMask::from_valid(&[]).count(), 0);
    }

    #[test]
    fn folds_match_row_loops_bitwise() {
        let col: Vec<f64> = (0..200).map(|i| (i as f64) * 0.1 + 1e9).collect();
        let mut mask = SelectionMask::all(200);
        mask.retain_range(&col, 1e9 + 2.0, 1e9 + 15.0);
        let rows: Vec<f64> = col
            .iter()
            .copied()
            .filter(|v| (1e9 + 2.0..=1e9 + 15.0).contains(v))
            .collect();

        let (mut sum, mut sum_sq) = (0.0, 0.0);
        fold_sum_sq(&col, &mask, &mut sum, &mut sum_sq);
        let (mut rsum, mut rsq) = (0.0, 0.0);
        for &v in &rows {
            rsum += v;
            rsq += v * v;
        }
        assert_eq!(sum.to_bits(), rsum.to_bits());
        assert_eq!(sum_sq.to_bits(), rsq.to_bits());

        let (mut n, mut mean, mut m2) = (0u64, 0.0, 0.0);
        fold_welford(&col, &mask, &mut n, &mut mean, &mut m2);
        let (mut rn, mut rmean, mut rm2) = (0u64, 0.0, 0.0);
        for &v in &rows {
            rn += 1;
            let delta = v - rmean;
            rmean += delta / rn as f64;
            rm2 += delta * (v - rmean);
        }
        assert_eq!(
            (n, mean.to_bits(), m2.to_bits()),
            (rn, rmean.to_bits(), rm2.to_bits())
        );

        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        fold_min_max(&col, &mask, &mut lo, &mut hi);
        assert_eq!(lo, rows.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(hi, rows.iter().copied().fold(f64::NEG_INFINITY, f64::max));

        let mut gathered = Vec::new();
        gather(&col, &mask, &mut gathered);
        assert_eq!(gathered, rows);
    }

    #[test]
    fn bivariate_fold_matches_push_order() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let ys = vec![2.0, 4.0, 6.0, 8.0];
        let mut m = SelectionMask::all(4);
        m.retain_range(&xs, 2.0, 4.0);
        let mut s = BivariateStats::default();
        fold_bivariate(&xs, &ys, &m, &mut s);
        let mut want = BivariateStats::default();
        for i in 1..4 {
            want.push(xs[i], ys[i]);
        }
        assert_eq!(s, want);
    }

    #[test]
    fn empty_mask_folds_are_neutral() {
        let col: Vec<f64> = vec![];
        let mask = SelectionMask::all(0);
        let (mut sum, mut sq) = (0.0, 0.0);
        fold_sum_sq(&col, &mask, &mut sum, &mut sq);
        assert_eq!((sum, sq), (0.0, 0.0));
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        fold_min_max(&col, &mask, &mut lo, &mut hi);
        assert!(lo.is_infinite() && hi.is_infinite());
    }
}
