//! Cost accounting for the simulated distributed substrate.
//!
//! The paper's critique of the state of the art (§II-A) is phrased entirely
//! in resource terms: queries "access large numbers of data server nodes",
//! "crunch and transfer large volumes of data", and "each layer [of the
//! BDAS] adds extra overheads at all nodes engaged". This module makes those
//! quantities first-class: every engine in the workspace charges its work to
//! a [`CostMeter`], and a [`CostModel`] converts the raw counters into
//! simulated wall-clock time and money cost — deterministically, so
//! experiments are reproducible and machine-independent.

use serde::{Deserialize, Serialize};

/// Conversion rates from raw resource counters to simulated time and money.
///
/// The defaults model a commodity cluster: 10 ms disk seek, ~100 MB/s
/// sequential disk, ~1 Gb/s LAN with 0.2 ms per-message latency, ~50 ms WAN
/// round-trip with ~50 Mb/s effective inter-datacentre bandwidth, and a
/// per-layer software overhead charged once per BDAS layer per touched node
/// (the paper's "each layer adding extra overheads").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Microseconds per disk seek (also charged once per MapReduce-style
    /// split, modelling per-task scheduling overhead).
    pub disk_seek_us: f64,
    /// Microseconds per random point read (index-driven record fetch).
    pub disk_point_us: f64,
    /// Microseconds per byte read from disk.
    pub disk_byte_us: f64,
    /// Microseconds of fixed latency per LAN message.
    pub lan_msg_us: f64,
    /// Microseconds per byte sent over the LAN.
    pub lan_byte_us: f64,
    /// Microseconds of fixed latency per WAN message.
    pub wan_msg_us: f64,
    /// Microseconds per byte sent over the WAN.
    pub wan_byte_us: f64,
    /// Microseconds of CPU work per record processed.
    pub cpu_record_us: f64,
    /// Microseconds of software overhead per BDAS layer crossing per node.
    pub layer_us: f64,
    /// Money cost (arbitrary currency units) per node-second of work.
    pub money_per_node_second: f64,
    /// Money cost per gigabyte moved across the WAN.
    pub money_per_wan_gb: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            disk_seek_us: 10_000.0,
            disk_point_us: 100.0, // SSD-class point lookup
            disk_byte_us: 0.01,   // 100 MB/s
            lan_msg_us: 200.0,    // 0.2 ms
            lan_byte_us: 0.008,   // 1 Gb/s
            wan_msg_us: 50_000.0, // 50 ms RTT
            wan_byte_us: 0.16,    // 50 Mb/s
            cpu_record_us: 0.05,
            layer_us: 2_000.0, // 2 ms software tax per layer per node
            money_per_node_second: 0.0001,
            money_per_wan_gb: 0.05,
        }
    }
}

/// Raw resource counters accumulated while executing a query or task.
///
/// Meters are cheap plain structs; engines create one per task (or per
/// simulated node) and combine them with [`CostMeter::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostMeter {
    /// Number of disk seeks performed.
    pub disk_seeks: u64,
    /// Number of random point reads performed.
    pub disk_point_reads: u64,
    /// Bytes read from disk.
    pub disk_bytes: u64,
    /// Messages sent over the LAN.
    pub lan_msgs: u64,
    /// Bytes sent over the LAN.
    pub lan_bytes: u64,
    /// Messages sent over the WAN.
    pub wan_msgs: u64,
    /// Bytes sent over the WAN.
    pub wan_bytes: u64,
    /// Records processed by CPU (scanned, filtered, aggregated, joined).
    pub records_processed: u64,
    /// BDAS layer crossings (layers × nodes engaged).
    pub layer_crossings: u64,
    /// Data-server nodes engaged by the task.
    pub nodes_touched: u64,
    /// Simulated microseconds spent waiting in retry backoff (charged at
    /// 1 µs per unit — the unit *is* microseconds, no model rate needed).
    pub backoff_us: u64,
}

impl CostMeter {
    /// A fresh zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one disk read of `bytes` bytes (one seek plus the transfer).
    pub fn charge_disk_read(&mut self, bytes: u64) {
        self.disk_seeks += 1;
        self.disk_bytes += bytes;
    }

    /// Charges one random point read of `bytes` bytes (an index-driven
    /// record fetch).
    pub fn charge_point_read(&mut self, bytes: u64) {
        self.disk_point_reads += 1;
        self.disk_bytes += bytes;
    }

    /// Charges one LAN message carrying `bytes` bytes.
    pub fn charge_lan(&mut self, bytes: u64) {
        self.lan_msgs += 1;
        self.lan_bytes += bytes;
    }

    /// Charges one WAN message carrying `bytes` bytes.
    pub fn charge_wan(&mut self, bytes: u64) {
        self.wan_msgs += 1;
        self.wan_bytes += bytes;
    }

    /// Charges CPU processing of `records` records.
    pub fn charge_cpu(&mut self, records: u64) {
        self.records_processed += records;
    }

    /// Charges `us` simulated microseconds of retry-backoff waiting.
    pub fn charge_backoff(&mut self, us: u64) {
        self.backoff_us += us;
    }

    /// Records that a task engaged one more data-server node, crossing
    /// `layers` BDAS layers on it.
    pub fn touch_node(&mut self, layers: u64) {
        self.nodes_touched += 1;
        self.layer_crossings += layers;
    }

    /// Adds another meter's counters into this one (sequential composition
    /// or simple totalling across nodes).
    pub fn merge(&mut self, other: &CostMeter) {
        self.disk_seeks += other.disk_seeks;
        self.disk_point_reads += other.disk_point_reads;
        self.disk_bytes += other.disk_bytes;
        self.lan_msgs += other.lan_msgs;
        self.lan_bytes += other.lan_bytes;
        self.wan_msgs += other.wan_msgs;
        self.wan_bytes += other.wan_bytes;
        self.records_processed += other.records_processed;
        self.layer_crossings += other.layer_crossings;
        self.nodes_touched += other.nodes_touched;
        self.backoff_us += other.backoff_us;
    }

    /// Adds another meter's counters into this one, each scaled by
    /// `factor` (rounded to the nearest integer). The fault layer's
    /// slow-node model: the same work, `factor`× the cost.
    pub fn merge_scaled(&mut self, other: &CostMeter, factor: f64) {
        let scale = |x: u64| (x as f64 * factor).round() as u64;
        self.disk_seeks += scale(other.disk_seeks);
        self.disk_point_reads += scale(other.disk_point_reads);
        self.disk_bytes += scale(other.disk_bytes);
        self.lan_msgs += scale(other.lan_msgs);
        self.lan_bytes += scale(other.lan_bytes);
        self.wan_msgs += scale(other.wan_msgs);
        self.wan_bytes += scale(other.wan_bytes);
        self.records_processed += scale(other.records_processed);
        self.layer_crossings += scale(other.layer_crossings);
        self.nodes_touched += scale(other.nodes_touched);
        self.backoff_us += scale(other.backoff_us);
    }

    /// Simulated elapsed microseconds if all this meter's work ran
    /// sequentially on one node, under `model`.
    pub fn sequential_us(&self, model: &CostModel) -> f64 {
        self.disk_seeks as f64 * model.disk_seek_us
            + self.disk_point_reads as f64 * model.disk_point_us
            + self.disk_bytes as f64 * model.disk_byte_us
            + self.lan_msgs as f64 * model.lan_msg_us
            + self.lan_bytes as f64 * model.lan_byte_us
            + self.wan_msgs as f64 * model.wan_msg_us
            + self.wan_bytes as f64 * model.wan_byte_us
            + self.records_processed as f64 * model.cpu_record_us
            + self.layer_crossings as f64 * model.layer_us
            + self.backoff_us as f64
    }

    /// Builds the final [`CostReport`] for a task whose per-node work is
    /// described by `per_node` meters running **in parallel**, plus this
    /// meter's own coordinator-side (sequential) work. Wall-clock is the
    /// slowest node plus the coordinator; totals and money sum everything.
    pub fn report_parallel<'a, I>(&self, per_node: I, model: &CostModel) -> CostReport
    where
        I: IntoIterator<Item = &'a CostMeter>,
    {
        let mut totals = *self;
        let mut slowest = 0.0f64;
        for m in per_node {
            slowest = slowest.max(m.sequential_us(model));
            totals.merge(m);
        }
        let wall_us = self.sequential_us(model) + slowest;
        CostReport::from_totals(totals, wall_us, model)
    }

    /// Builds the final [`CostReport`] for purely sequential execution.
    pub fn report_sequential(&self, model: &CostModel) -> CostReport {
        CostReport::from_totals(*self, self.sequential_us(model), model)
    }
}

/// The outcome of cost accounting for one task: total resource counters,
/// simulated wall-clock time, and money cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Summed resource counters across all nodes.
    pub totals: CostMeter,
    /// Simulated wall-clock microseconds (accounts for node parallelism).
    pub wall_us: f64,
    /// Money cost in arbitrary currency units.
    pub money: f64,
    /// Fraction of the engaged partitions that contributed to the answer:
    /// 1.0 for a complete answer, less when a partial-answer executor
    /// skipped unavailable partitions (the availability-for-accuracy
    /// trade made explicit).
    pub answered_fraction: f64,
    /// Partitions that could not be served at all (down, no live
    /// replica, retries exhausted).
    pub nodes_unavailable: u64,
}

impl CostReport {
    fn from_totals(totals: CostMeter, wall_us: f64, model: &CostModel) -> Self {
        // Money charges every node for the wall duration of the task plus
        // the WAN transfer volume.
        let node_seconds = (totals.nodes_touched.max(1)) as f64 * wall_us / 1e6;
        let money = node_seconds * model.money_per_node_second
            + totals.wan_bytes as f64 / 1e9 * model.money_per_wan_gb;
        CostReport {
            totals,
            wall_us,
            money,
            answered_fraction: 1.0,
            nodes_unavailable: 0,
        }
    }

    /// A zero-cost report (e.g. a pure in-memory model prediction).
    pub fn zero() -> Self {
        CostReport {
            totals: CostMeter::default(),
            wall_us: 0.0,
            money: 0.0,
            answered_fraction: 1.0,
            nodes_unavailable: 0,
        }
    }

    /// Combines two reports executed one after the other. Availability
    /// composes pessimistically: the combined answer is only as complete
    /// as its least-complete part (clamped into `[0, 1]`, and a NaN
    /// fraction — completeness unknown — composes as 0, not as complete:
    /// `f64::min` would silently discard the NaN operand), and
    /// unavailable partitions sum (saturating). Money and wall-clock add;
    /// a NaN cost input deliberately propagates so a poisoned bill stays
    /// loud instead of laundering into a finite total.
    pub fn then(&self, later: &CostReport) -> CostReport {
        let mut totals = self.totals;
        totals.merge(&later.totals);
        let answered_fraction =
            if self.answered_fraction.is_nan() || later.answered_fraction.is_nan() {
                0.0
            } else {
                self.answered_fraction
                    .min(later.answered_fraction)
                    .clamp(0.0, 1.0)
            };
        CostReport {
            totals,
            wall_us: self.wall_us + later.wall_us,
            money: self.money + later.money,
            answered_fraction,
            nodes_unavailable: self
                .nodes_unavailable
                .saturating_add(later.nodes_unavailable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_sane() {
        let m = CostModel::default();
        // Reading 1 MB: one 10 ms seek + ~10 ms transfer.
        let mut meter = CostMeter::new();
        meter.charge_disk_read(1_000_000);
        let us = meter.sequential_us(&m);
        assert!((us - 20_000.0).abs() < 1.0, "got {us}");
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CostMeter::new();
        a.charge_lan(100);
        a.touch_node(3);
        let mut b = CostMeter::new();
        b.charge_lan(50);
        b.charge_cpu(10);
        a.merge(&b);
        assert_eq!(a.lan_msgs, 2);
        assert_eq!(a.lan_bytes, 150);
        assert_eq!(a.records_processed, 10);
        assert_eq!(a.nodes_touched, 1);
        assert_eq!(a.layer_crossings, 3);
    }

    #[test]
    fn parallel_report_takes_slowest_node() {
        let model = CostModel::default();
        let mut coord = CostMeter::new();
        coord.charge_lan(0); // one message: 200us

        let mut fast = CostMeter::new();
        fast.charge_cpu(100); // 5 us
        let mut slow = CostMeter::new();
        slow.charge_cpu(1_000_000); // 50_000 us

        let report = coord.report_parallel([&fast, &slow], &model);
        assert!((report.wall_us - (200.0 + 50_000.0)).abs() < 1e-9);
        assert_eq!(report.totals.records_processed, 1_000_100);
    }

    #[test]
    fn sequential_report_sums_everything() {
        let model = CostModel::default();
        let mut m = CostMeter::new();
        m.charge_cpu(1_000_000);
        m.charge_disk_read(0);
        let report = m.report_sequential(&model);
        assert!((report.wall_us - (50_000.0 + 10_000.0)).abs() < 1e-9);
    }

    #[test]
    fn wan_traffic_costs_money() {
        let model = CostModel::default();
        let mut m = CostMeter::new();
        m.charge_wan(2_000_000_000); // 2 GB
        let report = m.report_sequential(&model);
        assert!(report.money > 2.0 * model.money_per_wan_gb * 0.99);
    }

    #[test]
    fn then_composes_sequentially() {
        let model = CostModel::default();
        let mut a = CostMeter::new();
        a.charge_cpu(100);
        let mut b = CostMeter::new();
        b.charge_cpu(200);
        let ra = a.report_sequential(&model);
        let rb = b.report_sequential(&model);
        let c = ra.then(&rb);
        assert_eq!(c.totals.records_processed, 300);
        assert!((c.wall_us - (ra.wall_us + rb.wall_us)).abs() < 1e-12);
    }

    #[test]
    fn zero_report() {
        let z = CostReport::zero();
        assert_eq!(z.wall_us, 0.0);
        assert_eq!(z.money, 0.0);
        assert_eq!(z.totals, CostMeter::default());
        assert_eq!(z.answered_fraction, 1.0);
        assert_eq!(z.nodes_unavailable, 0);
    }

    #[test]
    fn backoff_is_charged_as_microseconds() {
        let model = CostModel::default();
        let mut m = CostMeter::new();
        m.charge_backoff(1_500);
        assert!((m.sequential_us(&model) - 1_500.0).abs() < 1e-9);
    }

    #[test]
    fn merge_scaled_multiplies_counters() {
        let mut slow = CostMeter::new();
        let mut scan = CostMeter::new();
        scan.charge_disk_read(1_000);
        scan.charge_cpu(10);
        slow.merge_scaled(&scan, 3.0);
        assert_eq!(slow.disk_seeks, 3);
        assert_eq!(slow.disk_bytes, 3_000);
        assert_eq!(slow.records_processed, 30);
    }

    #[test]
    fn then_composes_availability_pessimistically() {
        let mut a = CostReport::zero();
        a.answered_fraction = 0.75;
        a.nodes_unavailable = 1;
        let mut b = CostReport::zero();
        b.answered_fraction = 0.5;
        b.nodes_unavailable = 2;
        let c = a.then(&b);
        assert_eq!(c.answered_fraction, 0.5);
        assert_eq!(c.nodes_unavailable, 3);
    }

    #[test]
    fn then_chains_a_full_failure_with_a_partial_answer() {
        // A fully-failed leg (nothing answered, every partition down)
        // followed by a partial retry: the chain is only as complete as
        // its worst leg and the unavailable partitions accumulate.
        let mut failed = CostReport::zero();
        failed.answered_fraction = 0.0;
        failed.nodes_unavailable = 4;
        let mut partial = CostReport::zero();
        partial.answered_fraction = 0.6;
        partial.nodes_unavailable = 1;
        for chained in [failed.then(&partial), partial.then(&failed)] {
            assert_eq!(chained.answered_fraction, 0.0);
            assert_eq!(chained.nodes_unavailable, 5);
        }
    }

    #[test]
    fn then_treats_nan_answered_fraction_as_zero() {
        // f64::min(NaN, x) returns x, which would silently count an
        // unknown-completeness report as fully answered. Pessimistic
        // composition maps NaN to 0 on either side.
        let mut unknown = CostReport::zero();
        unknown.answered_fraction = f64::NAN;
        let complete = CostReport::zero();
        assert_eq!(unknown.then(&complete).answered_fraction, 0.0);
        assert_eq!(complete.then(&unknown).answered_fraction, 0.0);
        assert_eq!(unknown.then(&unknown).answered_fraction, 0.0);
    }

    #[test]
    fn then_clamps_out_of_range_fractions() {
        let mut over = CostReport::zero();
        over.answered_fraction = 1.5;
        let mut under = CostReport::zero();
        under.answered_fraction = -0.25;
        assert_eq!(over.then(&over).answered_fraction, 1.0);
        assert_eq!(over.then(&under).answered_fraction, 0.0);
    }

    #[test]
    fn then_saturates_unavailable_partition_counts() {
        let mut a = CostReport::zero();
        a.nodes_unavailable = u64::MAX - 1;
        let mut b = CostReport::zero();
        b.nodes_unavailable = 7;
        assert_eq!(a.then(&b).nodes_unavailable, u64::MAX);
    }

    #[test]
    fn then_keeps_nan_money_and_wall_loud() {
        // A poisoned bill must not launder into a finite total: NaN
        // money/wall propagates through composition (and only NaN does —
        // finite legs still add).
        let mut poisoned = CostReport::zero();
        poisoned.money = f64::NAN;
        poisoned.wall_us = f64::NAN;
        let mut fine = CostReport::zero();
        fine.money = 2.5;
        fine.wall_us = 100.0;
        let chained = poisoned.then(&fine);
        assert!(chained.money.is_nan());
        assert!(chained.wall_us.is_nan());
        let clean = fine.then(&fine);
        assert_eq!(clean.money, 5.0);
        assert_eq!(clean.wall_us, 200.0);
    }

    #[test]
    fn availability_fields_default_to_complete() {
        let model = CostModel::default();
        let mut m = CostMeter::new();
        m.charge_cpu(10);
        let r = m.report_sequential(&model);
        assert_eq!(r.answered_fraction, 1.0);
        assert_eq!(r.nodes_unavailable, 0);
        assert_eq!(r.totals.backoff_us, 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary meter with realistically-bounded counters (the tuple
    /// strategies top out at six fields, so the eleven counters are
    /// grouped as a quintuple and a sextuple).
    fn meter() -> impl Strategy<Value = CostMeter> {
        (
            (
                0..1_000u64,
                0..1_000u64,
                0..10_000_000u64,
                0..1_000u64,
                0..10_000_000u64,
            ),
            (
                0..100u64,
                0..10_000_000u64,
                0..10_000_000u64,
                0..1_000u64,
                0..64u64,
                0..1_000_000u64,
            ),
        )
            .prop_map(
                |(
                    (seeks, points, dbytes, lmsgs, lbytes),
                    (wmsgs, wbytes, recs, layers, nodes, backoff),
                )| {
                    CostMeter {
                        disk_seeks: seeks,
                        disk_point_reads: points,
                        disk_bytes: dbytes,
                        lan_msgs: lmsgs,
                        lan_bytes: lbytes,
                        wan_msgs: wmsgs,
                        wan_bytes: wbytes,
                        records_processed: recs,
                        layer_crossings: layers,
                        nodes_touched: nodes,
                        backoff_us: backoff,
                    }
                },
            )
    }

    fn merged(a: &CostMeter, b: &CostMeter) -> CostMeter {
        let mut m = *a;
        m.merge(b);
        m
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn merge_is_commutative(a in meter(), b in meter()) {
            prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        }

        #[test]
        fn merge_is_associative(a in meter(), b in meter(), c in meter()) {
            prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        }

        #[test]
        fn merge_totals_are_sums_of_parts(a in meter(), b in meter()) {
            let m = merged(&a, &b);
            prop_assert_eq!(m.disk_seeks, a.disk_seeks + b.disk_seeks);
            prop_assert_eq!(m.disk_point_reads, a.disk_point_reads + b.disk_point_reads);
            prop_assert_eq!(m.disk_bytes, a.disk_bytes + b.disk_bytes);
            prop_assert_eq!(m.lan_msgs, a.lan_msgs + b.lan_msgs);
            prop_assert_eq!(m.lan_bytes, a.lan_bytes + b.lan_bytes);
            prop_assert_eq!(m.wan_msgs, a.wan_msgs + b.wan_msgs);
            prop_assert_eq!(m.wan_bytes, a.wan_bytes + b.wan_bytes);
            prop_assert_eq!(m.records_processed, a.records_processed + b.records_processed);
            prop_assert_eq!(m.layer_crossings, a.layer_crossings + b.layer_crossings);
            prop_assert_eq!(m.nodes_touched, a.nodes_touched + b.nodes_touched);
            prop_assert_eq!(m.backoff_us, a.backoff_us + b.backoff_us);
        }

        #[test]
        fn merge_scaled_by_one_is_merge(a in meter(), b in meter()) {
            let mut scaled = a;
            scaled.merge_scaled(&b, 1.0);
            prop_assert_eq!(scaled, merged(&a, &b));
        }

        #[test]
        fn merge_with_zero_is_identity(a in meter()) {
            prop_assert_eq!(merged(&a, &CostMeter::new()), a);
            prop_assert_eq!(merged(&CostMeter::new(), &a), a);
        }

        #[test]
        fn sequential_time_is_additive_under_merge(a in meter(), b in meter()) {
            let model = CostModel::default();
            let lhs = merged(&a, &b).sequential_us(&model);
            let rhs = a.sequential_us(&model) + b.sequential_us(&model);
            prop_assert!(close(lhs, rhs), "{lhs} vs {rhs}");
        }

        #[test]
        fn money_round_trips_from_totals_and_wall_clock(m in meter()) {
            // A report's money must be reconstructible from its published
            // totals and wall-clock — the CostModel time→money conversion
            // loses no information.
            let model = CostModel::default();
            let report = m.report_sequential(&model);
            let rebuilt = report.totals.nodes_touched.max(1) as f64 * report.wall_us / 1e6
                * model.money_per_node_second
                + report.totals.wan_bytes as f64 / 1e9 * model.money_per_wan_gb;
            prop_assert!(close(report.money, rebuilt), "{} vs {rebuilt}", report.money);
            prop_assert!(report.wall_us >= 0.0 && report.money >= 0.0);
        }

        #[test]
        fn then_composes_totals_costs_and_availability(
            a in meter(), b in meter(),
            fa in 0.0f64..1.0, fb in 0.0f64..1.0,
            ua in 0..1_000u64, ub in 0..1_000u64,
        ) {
            let model = CostModel::default();
            let mut ra = a.report_sequential(&model);
            ra.answered_fraction = fa;
            ra.nodes_unavailable = ua;
            let mut rb = b.report_sequential(&model);
            rb.answered_fraction = fb;
            rb.nodes_unavailable = ub;
            let c = ra.then(&rb);
            prop_assert_eq!(c.totals, merged(&a, &b));
            prop_assert!(close(c.wall_us, ra.wall_us + rb.wall_us));
            prop_assert!(close(c.money, ra.money + rb.money));
            prop_assert_eq!(c.answered_fraction, fa.min(fb));
            prop_assert!((0.0..=1.0).contains(&c.answered_fraction));
            prop_assert_eq!(c.nodes_unavailable, ua + ub);
            // `then` is order-insensitive in everything but nothing:
            // both orders agree on every field.
            let d = rb.then(&ra);
            prop_assert_eq!(c.answered_fraction, d.answered_fraction);
            prop_assert_eq!(c.nodes_unavailable, d.nodes_unavailable);
            prop_assert_eq!(c.totals, d.totals);
        }

        #[test]
        fn parallel_wall_clock_bounded_by_sequential(coord in meter(), a in meter(), b in meter()) {
            // Parallelism can only help: slowest-node wall-clock is at most
            // the fully-sequential time, and totals still sum everything.
            let model = CostModel::default();
            let report = coord.report_parallel([&a, &b], &model);
            let sequential = merged(&merged(&coord, &a), &b).sequential_us(&model);
            prop_assert!(report.wall_us <= sequential + 1e-9 * (1.0 + sequential));
            prop_assert_eq!(report.totals, merged(&merged(&coord, &a), &b));
        }
    }
}
