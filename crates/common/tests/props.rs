//! Property tests of the geometric and statistical core types.

use proptest::prelude::*;

use sea_common::{AggregateKind, BivariateStats, Point, Record, Rect};

fn arb_rect(max: f64) -> impl Strategy<Value = Rect> {
    (0.0..max, 0.0..max, 0.01..max, 0.01..max)
        .prop_map(|(x, y, w, h)| Rect::new(vec![x, y], vec![x + w, y + h]).unwrap())
}

fn arb_point(max: f64) -> impl Strategy<Value = Point> {
    (0.0..max, 0.0..max).prop_map(|(x, y)| Point::new(vec![x, y]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intersection_is_commutative(a in arb_rect(50.0), b in arb_rect(50.0)) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(x), Some(y)) => prop_assert_eq!(x, y),
            (None, None) => {}
            other => prop_assert!(false, "asymmetric intersection: {other:?}"),
        }
    }

    #[test]
    fn intersection_is_contained_in_both(a in arb_rect(50.0), b in arb_rect(50.0)) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.volume() <= a.volume() + 1e-9);
            prop_assert!(i.volume() <= b.volume() + 1e-9);
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(50.0), b in arb_rect(50.0)) {
        let u = a.union(&b).unwrap();
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.volume() + 1e-9 >= a.volume().max(b.volume()));
    }

    #[test]
    fn contained_point_implies_intersection(r in arb_rect(50.0), p in arb_point(60.0)) {
        if r.contains(&p) {
            let tiny = Rect::centered(&p, &[1e-9, 1e-9]).unwrap();
            prop_assert!(r.intersects(&tiny));
            prop_assert_eq!(r.min_distance(&p).unwrap(), 0.0);
        }
    }

    #[test]
    fn overlap_fraction_is_a_fraction(a in arb_rect(50.0), b in arb_rect(50.0)) {
        let f = a.overlap_fraction(&b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
        // Overlap with itself is 1.
        prop_assert!((a.overlap_fraction(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn centered_roundtrip(p in arb_point(50.0), e1 in 0.01f64..10.0, e2 in 0.01f64..10.0) {
        let r = Rect::centered(&p, &[e1, e2]).unwrap();
        let c = r.center();
        prop_assert!((c.coord(0) - p.coord(0)).abs() < 1e-9);
        prop_assert!((c.coord(1) - p.coord(1)).abs() < 1e-9);
        let ex = r.extents();
        prop_assert!((ex[0] - e1).abs() < 1e-9);
        prop_assert!((ex[1] - e2).abs() < 1e-9);
    }

    #[test]
    fn min_distance_triangle_consistency(r in arb_rect(50.0), p in arb_point(60.0)) {
        // min_distance(p) ≤ distance(p, center) always.
        let d = r.min_distance(&p).unwrap();
        let to_center = p.distance(&r.center()).unwrap();
        prop_assert!(d <= to_center + 1e-9);
    }

    #[test]
    fn distances_satisfy_metric_basics(
        a in arb_point(100.0),
        b in arb_point(100.0),
        c in arb_point(100.0),
    ) {
        let ab = a.distance(&b).unwrap();
        let ba = b.distance(&a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab >= 0.0);
        // Triangle inequality.
        let ac = a.distance(&c).unwrap();
        let cb = c.distance(&b).unwrap();
        prop_assert!(ab <= ac + cb + 1e-9);
        // Norm ordering: chebyshev ≤ euclidean ≤ manhattan.
        let ch = a.chebyshev_distance(&b).unwrap();
        let mh = a.manhattan_distance(&b).unwrap();
        prop_assert!(ch <= ab + 1e-9);
        prop_assert!(ab <= mh + 1e-9);
    }

    #[test]
    fn aggregates_are_permutation_invariant(values in prop::collection::vec(0.0f64..100.0, 2..40)) {
        let records: Vec<Record> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| Record::new(i as u64, vec![v, 100.0 - v]))
            .collect();
        let mut shuffled = records.clone();
        shuffled.reverse();
        for agg in [
            AggregateKind::Count,
            AggregateKind::Sum { dim: 0 },
            AggregateKind::Mean { dim: 0 },
            AggregateKind::Variance { dim: 1 },
            AggregateKind::Median { dim: 0 },
        ] {
            let a = agg.compute(&records).unwrap();
            let b = agg.compute(&shuffled).unwrap();
            prop_assert!(a.relative_error(&b) < 1e-9, "{agg:?}");
        }
    }

    #[test]
    fn variance_is_nonnegative_and_mean_in_range(values in prop::collection::vec(-50.0f64..50.0, 1..40)) {
        let records: Vec<Record> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| Record::new(i as u64, vec![v]))
            .collect();
        let var = AggregateKind::Variance { dim: 0 }
            .compute(&records)
            .unwrap()
            .as_scalar()
            .unwrap();
        prop_assert!(var >= -1e-9);
        let mean = AggregateKind::Mean { dim: 0 }
            .compute(&records)
            .unwrap()
            .as_scalar()
            .unwrap();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }

    #[test]
    fn correlation_is_bounded_and_symmetric(values in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 3..40)) {
        let mut stats = BivariateStats::default();
        let mut flipped = BivariateStats::default();
        for (x, y) in &values {
            stats.push(*x, *y);
            flipped.push(*y, *x);
        }
        if let (Ok(a), Ok(b)) = (stats.correlation(), flipped.correlation()) {
            prop_assert!(a.abs() <= 1.0 + 1e-9);
            prop_assert!((a - b).abs() < 1e-9, "corr(x,y) == corr(y,x)");
        }
    }

    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(0.0f64..100.0, 2..40)) {
        let records: Vec<Record> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| Record::new(i as u64, vec![v]))
            .collect();
        let q = |level: f64| {
            AggregateKind::Quantile { dim: 0, q: level }
                .compute(&records)
                .unwrap()
                .as_scalar()
                .unwrap()
        };
        prop_assert!(q(0.0) <= q(0.25) + 1e-9);
        prop_assert!(q(0.25) <= q(0.5) + 1e-9);
        prop_assert!(q(0.5) <= q(0.75) + 1e-9);
        prop_assert!(q(0.75) <= q(1.0) + 1e-9);
    }
}
