//! # sea-imputation
//!
//! Scalable missing-value imputation (P3, fourth bullet; \[36\]): filling
//! `NaN` attribute values from the values of similar complete records — a
//! preparatory data-quality task the paper lists among those processed
//! wastefully by BDAS/MapReduce-style engines.
//!
//! Two strategies over the same substrate:
//!
//! * [`fullscan_impute`] — the baseline: every incomplete record is
//!   compared against the *entire* table, scanned through the BDAS stack.
//! * [`GridImputer`] — the scalable operator: complete records are indexed
//!   once in a grid; each incomplete record fetches candidates only from
//!   the grid cells compatible with its observed attributes, then imputes
//!   from its k nearest candidates (distance over observed dimensions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod operator;

pub use operator::{fullscan_impute, GridImputer, ImputationOutcome};
