//! Full-scan vs grid-partitioned kNN imputation.

use sea_common::{CostMeter, CostModel, CostReport, Record, Rect, Result, SeaError};
use sea_storage::{StorageCluster, BDAS_LAYERS, DIRECT_LAYERS};

/// The outcome of imputing a batch of incomplete records.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputationOutcome {
    /// The records with `NaN` values replaced (order preserved; records
    /// with no usable donors keep their `NaN`s).
    pub imputed: Vec<Record>,
    /// Resource bill.
    pub cost: CostReport,
    /// Candidate comparisons performed (the surgical-access metric).
    pub candidates_examined: u64,
}

/// Distance over the dimensions observed in `probe` (ignoring its NaNs).
/// Returns `None` when no dimension is observed.
fn observed_distance(probe: &Record, donor: &Record) -> Option<f64> {
    let mut acc = 0.0;
    let mut n = 0;
    for (a, b) in probe.values.iter().zip(&donor.values) {
        if a.is_nan() || b.is_nan() {
            continue;
        }
        acc += (a - b) * (a - b);
        n += 1;
    }
    (n > 0).then(|| acc.sqrt())
}

/// Fills `probe`'s NaN dimensions with the mean of the k nearest donors.
fn fill_from(probe: &Record, mut donors: Vec<(&Record, f64)>, k: usize) -> Record {
    // total_cmp (NaN-safe) with a donor-id tie-break: equidistant donors
    // truncate to the same k-set regardless of input order.
    donors.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
    donors.truncate(k);
    let mut out = probe.clone();
    for d in 0..out.values.len() {
        if out.values[d].is_nan() {
            let usable: Vec<f64> = donors
                .iter()
                .map(|(r, _)| r.value(d))
                .filter(|v| !v.is_nan())
                .collect();
            if !usable.is_empty() {
                out.values[d] = usable.iter().sum::<f64>() / usable.len() as f64;
            }
        }
    }
    out
}

/// Baseline: impute each incomplete record by scanning the complete table
/// fully through the BDAS stack, once per batch, comparing every probe
/// against every stored record.
///
/// # Errors
///
/// Missing table, `k == 0`, or dimension mismatch.
pub fn fullscan_impute(
    cluster: &StorageCluster,
    table: &str,
    incomplete: &[Record],
    k: usize,
    cost_model: &CostModel,
) -> Result<ImputationOutcome> {
    if k == 0 {
        return Err(SeaError::invalid("k must be positive"));
    }
    let dims = cluster.dims(table)?;
    for r in incomplete {
        SeaError::check_dims(dims, r.dims())?;
    }
    let mut node_meters = Vec::new();
    let mut donors: Vec<Record> = Vec::new();
    for node in 0..cluster.num_nodes() {
        let mut meter = CostMeter::new();
        meter.touch_node(BDAS_LAYERS);
        let records = cluster.scan_node(table, node, &mut meter)?;
        // Every probe × every record comparison happens node-side.
        meter.charge_cpu(records.len() as u64 * incomplete.len() as u64);
        meter.charge_lan(64);
        donors.extend(records);
        node_meters.push(meter);
    }
    let mut examined = 0u64;
    let mut out = Vec::with_capacity(incomplete.len());
    for probe in incomplete {
        let cands: Vec<(&Record, f64)> = donors
            .iter()
            .filter_map(|r| observed_distance(probe, r).map(|d| (r, d)))
            .collect();
        examined += cands.len() as u64;
        out.push(fill_from(probe, cands, k));
    }
    let coord = CostMeter::new();
    Ok(ImputationOutcome {
        imputed: out,
        cost: coord.report_parallel(node_meters.iter(), cost_model),
        candidates_examined: examined,
    })
}

/// The scalable grid-partitioned imputer.
#[derive(Debug, Clone)]
pub struct GridImputer {
    domain: Rect,
    cells_per_dim: usize,
}

impl GridImputer {
    /// Creates an imputer that fetches donors from grid-cell-sized
    /// neighbourhoods of the observed attributes.
    ///
    /// # Errors
    ///
    /// Zero `cells_per_dim`.
    pub fn new(domain: Rect, cells_per_dim: usize) -> Result<Self> {
        if cells_per_dim == 0 {
            return Err(SeaError::invalid("cells_per_dim must be positive"));
        }
        Ok(GridImputer {
            domain,
            cells_per_dim,
        })
    }

    /// The donor-fetch region of one probe: observed dimensions are
    /// constrained to ± one cell width around the observed value; missing
    /// dimensions span the whole domain.
    fn donor_region(&self, probe: &Record) -> Result<Rect> {
        SeaError::check_dims(self.domain.dims(), probe.dims())?;
        let mut lo = self.domain.lo().to_vec();
        let mut hi = self.domain.hi().to_vec();
        for d in 0..probe.dims() {
            let v = probe.value(d);
            if v.is_nan() {
                continue;
            }
            let w = (self.domain.hi()[d] - self.domain.lo()[d]) / self.cells_per_dim as f64;
            lo[d] = (v - w).max(self.domain.lo()[d]);
            hi[d] = (v + w).min(self.domain.hi()[d]);
        }
        Rect::new(lo, hi)
    }

    /// Imputes a batch: each probe fetches donors only from its
    /// neighbourhood region via block-pruned coordinator reads.
    ///
    /// # Errors
    ///
    /// Missing table, `k == 0`, or dimension mismatch.
    pub fn impute(
        &self,
        cluster: &StorageCluster,
        table: &str,
        incomplete: &[Record],
        k: usize,
        cost_model: &CostModel,
    ) -> Result<ImputationOutcome> {
        if k == 0 {
            return Err(SeaError::invalid("k must be positive"));
        }
        let dims = cluster.dims(table)?;
        SeaError::check_dims(dims, self.domain.dims())?;
        // Probes are independent; each data node serves its share of the
        // probe fetches sequentially while the nodes run in parallel, so
        // the batch's wall-clock is the busiest node, not the probe sum.
        let mut per_node_acc = vec![CostMeter::new(); cluster.num_nodes()];
        let mut examined = 0u64;
        let mut out = Vec::with_capacity(incomplete.len());
        for probe in incomplete {
            let region = self.donor_region(probe)?;
            let nodes = cluster.nodes_for_region(table, &region)?;
            let mut donors: Vec<Record> = Vec::new();
            for node in nodes {
                let meter = &mut per_node_acc[node];
                meter.touch_node(DIRECT_LAYERS);
                // scan_node_region already charged the block scan CPU;
                // only the donor shipment is added here.
                let records = cluster.scan_node_region(table, node, &region, meter)?;
                meter.charge_lan(records.len() as u64 * 16);
                donors.extend(records);
            }
            let cands: Vec<(&Record, f64)> = donors
                .iter()
                .filter_map(|r| observed_distance(probe, r).map(|d| (r, d)))
                .collect();
            examined += cands.len() as u64;
            out.push(fill_from(probe, cands, k));
        }
        let coord = CostMeter::new();
        Ok(ImputationOutcome {
            imputed: out,
            cost: coord.report_parallel(per_node_acc.iter(), cost_model),
            candidates_examined: examined,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_storage::Partitioning;

    /// Complete table where attr1 = 2·attr0 and attr2 = 100 − attr0: every
    /// missing value is exactly recoverable from neighbours.
    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 64);
        // Clustered layout: consecutive ids share x, so range partitioning
        // and block zone maps both get real locality.
        let records: Vec<Record> = (0..5000)
            .map(|i| {
                let x = (i / 50) as f64;
                Record::new(i, vec![x, 2.0 * x, 100.0 - x])
            })
            .collect();
        c.load_table(
            "t",
            records,
            Partitioning::Range {
                dim: 0,
                splits: Partitioning::equi_width_splits(0.0, 100.0, 4),
            },
        )
        .unwrap();
        c
    }

    fn probes() -> Vec<Record> {
        (0..20)
            .map(|i| {
                let x = (i * 5) as f64;
                Record::new(100_000 + i, vec![x, f64::NAN, 100.0 - x])
            })
            .collect()
    }

    #[test]
    fn fullscan_recovers_exact_values() {
        let c = cluster();
        let model = CostModel::default();
        let out = fullscan_impute(&c, "t", &probes(), 5, &model).unwrap();
        for (probe, imputed) in probes().iter().zip(&out.imputed) {
            let want = 2.0 * probe.value(0);
            assert!(
                (imputed.value(1) - want).abs() < 1e-9,
                "probe {probe:?} → {imputed:?}"
            );
            assert!(!imputed.values.iter().any(|v| v.is_nan()));
        }
    }

    #[test]
    fn grid_imputer_matches_fullscan_accuracy() {
        let c = cluster();
        let model = CostModel::default();
        let domain = Rect::new(vec![0.0, 0.0, 0.0], vec![100.0, 200.0, 100.0]).unwrap();
        let imputer = GridImputer::new(domain, 50).unwrap();
        let out = imputer.impute(&c, "t", &probes(), 5, &model).unwrap();
        for (probe, imputed) in probes().iter().zip(&out.imputed) {
            let want = 2.0 * probe.value(0);
            assert!(
                (imputed.value(1) - want).abs() < 1e-9,
                "probe {probe:?} → {imputed:?}"
            );
        }
    }

    #[test]
    fn grid_imputer_is_much_cheaper() {
        let c = cluster();
        let model = CostModel::default();
        let domain = Rect::new(vec![0.0, 0.0, 0.0], vec![100.0, 200.0, 100.0]).unwrap();
        let imputer = GridImputer::new(domain, 50).unwrap();
        let grid = imputer.impute(&c, "t", &probes(), 5, &model).unwrap();
        let full = fullscan_impute(&c, "t", &probes(), 5, &model).unwrap();
        assert!(
            grid.candidates_examined * 5 < full.candidates_examined,
            "grid {} vs full {}",
            grid.candidates_examined,
            full.candidates_examined
        );
        assert!(
            grid.cost.totals.records_processed < full.cost.totals.records_processed / 10,
            "grid {} vs full {}",
            grid.cost.totals.records_processed,
            full.cost.totals.records_processed
        );
    }

    #[test]
    fn donors_with_missing_values_are_skipped_for_that_dim() {
        let mut c = StorageCluster::new(2, 16);
        let records = vec![
            Record::new(0, vec![1.0, f64::NAN]),
            Record::new(1, vec![1.0, 10.0]),
            Record::new(2, vec![1.2, 12.0]),
        ];
        c.load_table("t", records, Partitioning::Hash).unwrap();
        let model = CostModel::default();
        let probe = vec![Record::new(9, vec![1.1, f64::NAN])];
        let out = fullscan_impute(&c, "t", &probe, 3, &model).unwrap();
        let v = out.imputed[0].value(1);
        assert!((v - 11.0).abs() < 1e-9, "mean of usable donors: {v}");
    }

    #[test]
    fn unimputable_record_keeps_nan() {
        let mut c = StorageCluster::new(2, 16);
        let records = vec![
            Record::new(0, vec![1.0, f64::NAN]),
            Record::new(1, vec![2.0, f64::NAN]),
        ];
        c.load_table("t", records, Partitioning::Hash).unwrap();
        let model = CostModel::default();
        let probe = vec![Record::new(9, vec![1.5, f64::NAN])];
        let out = fullscan_impute(&c, "t", &probe, 2, &model).unwrap();
        assert!(out.imputed[0].value(1).is_nan(), "no donor has the value");
    }

    #[test]
    fn equidistant_donors_break_ties_by_id() {
        // Two donors at the same distance but different values: the id
        // tie-break makes the k=1 choice deterministic regardless of the
        // order the scan returned them in.
        let mut c = StorageCluster::new(2, 16);
        let records = vec![
            Record::new(5, vec![2.0, 20.0]),
            Record::new(3, vec![0.0, 30.0]),
        ];
        c.load_table("t", records, Partitioning::Hash).unwrap();
        let model = CostModel::default();
        let probe = vec![Record::new(9, vec![1.0, f64::NAN])];
        let out = fullscan_impute(&c, "t", &probe, 1, &model).unwrap();
        let v = out.imputed[0].value(1);
        assert!((v - 30.0).abs() < 1e-9, "lowest-id donor wins the tie: {v}");
    }

    #[test]
    fn validations() {
        let c = cluster();
        let model = CostModel::default();
        assert!(fullscan_impute(&c, "t", &probes(), 0, &model).is_err());
        assert!(fullscan_impute(&c, "missing", &probes(), 5, &model).is_err());
        let bad = vec![Record::new(0, vec![1.0])];
        assert!(fullscan_impute(&c, "t", &bad, 5, &model).is_err());
        let domain = Rect::new(vec![0.0; 3], vec![1.0; 3]).unwrap();
        assert!(GridImputer::new(domain, 0).is_err());
    }
}
