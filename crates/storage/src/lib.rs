//! # sea-storage
//!
//! A simulated distributed storage back-end with first-class cost
//! accounting — the substrate every SEA engine runs on.
//!
//! The paper's diagnosis (§II-A) is that analytical queries over Big Data
//! Analytics Stacks are slow because they (1) cross many software layers on
//! every engaged node, (2) engage many data nodes, and (3) move lots of
//! data. This crate simulates exactly that substrate: a cluster of
//! [`DataNode`]s storing tables as block-granular partitions, where every
//! read charges a [`sea_common::CostMeter`] with disk, CPU, network and
//! layer-crossing costs. Engines built on top (the exact executor, the
//! baselines, the surgical-access operators) therefore expose *measurable*
//! efficiency differences instead of hand-waved ones.
//!
//! Two access paths model the paper's two processing regimes:
//!
//! * **BDAS path** ([`BDAS_LAYERS`] crossings per engaged node): what a
//!   MapReduce-style job pays on every node it touches.
//! * **Direct path** ([`DIRECT_LAYERS`] crossing): what a coordinator that
//!   "accesses directly the storage engine" (RT3-2) pays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod fault;
pub mod node;
pub mod partition;

pub use cluster::{BlockCatalogEntry, StorageCluster, TableStats};
pub use fault::{FaultPlan, FaultState};
pub use node::{Block, DataNode, ScanStats};
pub use partition::{NodeId, Partitioning};

/// Software layers a MapReduce-style BDAS job crosses per engaged node:
/// distributed FS, resource manager, execution engine, application layer.
pub const BDAS_LAYERS: u64 = 4;

/// Layers crossed when a coordinator addresses the storage engine directly.
pub const DIRECT_LAYERS: u64 = 1;
