//! The simulated storage cluster: tables partitioned across data nodes.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sea_common::{CostMeter, Record, Rect, Result, SeaError};
use sea_telemetry::{TelemetrySink, TraceContext};

use crate::fault::{FaultDecision, FaultPlan, FaultState};
use crate::node::DataNode;
use crate::partition::{NodeId, Partitioning};

/// One entry of a table's block catalog: `(node, block index, bounds,
/// bytes, record count)` — the in-memory metadata index structures build
/// from.
pub type BlockCatalogEntry = (NodeId, usize, Rect, u64, usize);

/// Summary statistics of a stored table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Total number of records.
    pub records: usize,
    /// Total stored bytes.
    pub bytes: u64,
    /// Number of dimensions/attributes.
    pub dims: usize,
    /// Records per node.
    pub per_node: Vec<usize>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TableMeta {
    dims: usize,
    partitioning: Partitioning,
    /// Per-node primary storage for this table.
    nodes: Vec<DataNode>,
    /// Chained replicas when the cluster runs with replication factor 2:
    /// `replicas[i]` is a copy of node `(i − 1) mod n`'s partition, stored
    /// on node `i`.
    replicas: Option<Vec<DataNode>>,
}

/// A simulated cluster of data-server nodes holding partitioned tables.
///
/// All read paths take an explicit [`CostMeter`] (usually one per simulated
/// node, combined with
/// [`CostMeter::report_parallel`](sea_common::CostMeter::report_parallel))
/// so callers decide the parallelism semantics.
///
/// # Examples
///
/// ```
/// use sea_common::{CostMeter, Record};
/// use sea_storage::{Partitioning, StorageCluster};
///
/// let mut cluster = StorageCluster::new(4, 100);
/// let records: Vec<Record> = (0..1000)
///     .map(|i| Record::new(i, vec![i as f64, (i % 10) as f64]))
///     .collect();
/// cluster.load_table("t", records, Partitioning::Hash).unwrap();
/// assert_eq!(cluster.stats("t").unwrap().records, 1000);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageCluster {
    n_nodes: usize,
    block_size: usize,
    replication: usize,
    /// Per-node liveness; failed nodes answer no reads and their
    /// partitions are served by the next node's replica (when present).
    down: Vec<bool>,
    tables: HashMap<String, TableMeta>,
    /// Telemetry sink for `storage.*` spans/events. Not part of the
    /// cluster's persistent state; defaults to the no-op sink.
    #[serde(skip)]
    telemetry: TelemetrySink,
    /// Installed fault-injection state (see [`crate::fault`]). Shared
    /// across clones so one fault timeline governs an experiment; not
    /// part of the persistent cluster image.
    #[serde(skip)]
    faults: Option<Arc<FaultState>>,
}

impl StorageCluster {
    /// Creates a cluster of `n_nodes` nodes storing blocks of at most
    /// `block_size` records.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    pub fn new(n_nodes: usize, block_size: usize) -> Self {
        assert!(n_nodes > 0, "cluster needs at least one node");
        StorageCluster {
            n_nodes,
            block_size: block_size.max(1),
            replication: 1,
            down: vec![false; n_nodes],
            tables: HashMap::new(),
            telemetry: TelemetrySink::default(),
            faults: None,
        }
    }

    /// Creates a cluster with chained replication (factor 2): node `i`
    /// additionally stores a copy of node `i − 1`'s partitions, so any
    /// single node failure leaves every partition readable.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes < 2` (replication needs a distinct peer).
    pub fn with_replication(n_nodes: usize, block_size: usize) -> Self {
        assert!(n_nodes >= 2, "replication needs at least two nodes");
        StorageCluster {
            n_nodes,
            block_size: block_size.max(1),
            replication: 2,
            down: vec![false; n_nodes],
            tables: HashMap::new(),
            telemetry: TelemetrySink::default(),
            faults: None,
        }
    }

    /// The cluster's replication factor (1 = no replicas).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Attaches a telemetry sink; `storage.*` spans, counters, and events
    /// flow into it. Engines built on top of the cluster (e.g. the exact
    /// executor) inherit this sink, so attaching one here instruments the
    /// whole read path.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// The cluster's telemetry sink (no-op unless
    /// [`StorageCluster::set_telemetry`] was called).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Installs a deterministic fault-injection plan (replacing any
    /// previous one and resetting its operation counters). See
    /// [`crate::fault`] for the determinism contract.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(Arc::new(FaultState::new(plan, self.n_nodes)));
    }

    /// Removes the installed fault plan; the cluster becomes fault-free
    /// again (manually failed nodes stay failed).
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref().map(FaultState::plan)
    }

    /// Whether a fault-injection plan is installed. Engines with a
    /// metadata-level fast path (reading blocks directly via
    /// [`StorageCluster::serving_node`]) must fall back to the
    /// fault-gated scan API when this is true, so injected faults keep
    /// their per-operation determinism contract.
    pub fn has_fault_plan(&self) -> bool {
        self.faults.is_some()
    }

    /// Whether any node's primary is currently unable to serve (manually
    /// failed or crashed by the fault plan).
    pub fn any_primary_down(&self) -> bool {
        (0..self.n_nodes).any(|n| self.primary_down(n))
    }

    /// Whether partition `node`'s primary is currently unable to serve —
    /// manually failed or crashed by the fault plan. A successful scan of
    /// such a partition was served by its replica (a failover).
    pub fn primary_down(&self, node: NodeId) -> bool {
        self.down.get(node).copied().unwrap_or(false)
            || self.faults.as_ref().is_some_and(|f| f.crashed(node))
    }

    /// Consults the fault layer for one scan attempt against partition
    /// `node`: advances the node's operation counter, latches plan
    /// crashes, and either returns the latency multiplier to apply or a
    /// [`SeaError::Transient`] for an injected transient fault. No-op
    /// (multiplier 1.0) without an installed plan.
    fn fault_gate(&self, node: NodeId) -> Result<f64> {
        let Some(faults) = &self.faults else {
            return Ok(1.0);
        };
        match faults.on_scan(node) {
            FaultDecision::Proceed(multiplier) => Ok(multiplier),
            FaultDecision::Transient => Err(SeaError::Transient(format!(
                "injected fault: scan of partition {node} failed"
            ))),
        }
    }

    /// Marks node `node` as failed: reads of its partitions either fail
    /// (replication 1) or are served by the replica on the next node.
    ///
    /// # Errors
    ///
    /// Out-of-range node id.
    pub fn fail_node(&mut self, node: NodeId) -> Result<()> {
        if node >= self.n_nodes {
            return Err(SeaError::Storage(format!("node {node} out of range")));
        }
        self.down[node] = true;
        Ok(())
    }

    /// Brings a failed node back (its stored state was retained).
    ///
    /// # Errors
    ///
    /// Out-of-range node id.
    pub fn restore_node(&mut self, node: NodeId) -> Result<()> {
        if node >= self.n_nodes {
            return Err(SeaError::Storage(format!("node {node} out of range")));
        }
        self.down[node] = false;
        if let Some(faults) = &self.faults {
            faults.revive(node);
        }
        Ok(())
    }

    /// Whether `node` is currently failed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.get(node).copied().unwrap_or(false)
    }

    /// Number of data nodes.
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Block size in records.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Names of stored tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Creates and loads a table, distributing records per `partitioning`.
    ///
    /// # Errors
    ///
    /// Returns an error when the table already exists, `records` is empty,
    /// or records disagree in dimensionality.
    pub fn load_table(
        &mut self,
        name: &str,
        records: Vec<Record>,
        partitioning: Partitioning,
    ) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(SeaError::invalid(format!("table {name} already exists")));
        }
        let Some(first) = records.first() else {
            return Err(SeaError::Empty(format!("no records for table {name}")));
        };
        let dims = first.dims();
        for r in &records {
            SeaError::check_dims(dims, r.dims())?;
        }
        let mut per_node: Vec<Vec<Record>> = vec![Vec::new(); self.n_nodes];
        for r in records {
            let node = partitioning.node_for(&r, self.n_nodes);
            per_node[node].push(r);
        }
        let mut nodes = Vec::with_capacity(self.n_nodes);
        for batch in per_node {
            let mut node = DataNode::new();
            node.append(batch, self.block_size);
            nodes.push(node);
        }
        let replicas = (self.replication >= 2).then(|| {
            (0..self.n_nodes)
                .map(|i| nodes[(i + self.n_nodes - 1) % self.n_nodes].clone())
                .collect()
        });
        self.tables.insert(
            name.to_string(),
            TableMeta {
                dims,
                partitioning,
                nodes,
                replicas,
            },
        );
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// [`SeaError::NotFound`] when the table does not exist.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| SeaError::NotFound(format!("table {name}")))
    }

    fn meta(&self, name: &str) -> Result<&TableMeta> {
        self.tables
            .get(name)
            .ok_or_else(|| SeaError::NotFound(format!("table {name}")))
    }

    fn meta_mut(&mut self, name: &str) -> Result<&mut TableMeta> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| SeaError::NotFound(format!("table {name}")))
    }

    /// Table summary statistics.
    ///
    /// # Errors
    ///
    /// [`SeaError::NotFound`] when the table does not exist.
    pub fn stats(&self, name: &str) -> Result<TableStats> {
        let meta = self.meta(name)?;
        Ok(TableStats {
            records: meta.nodes.iter().map(DataNode::len).sum(),
            bytes: meta.nodes.iter().map(DataNode::bytes).sum(),
            dims: meta.dims,
            per_node: meta.nodes.iter().map(DataNode::len).collect(),
        })
    }

    /// Dimensionality of a table.
    ///
    /// # Errors
    ///
    /// [`SeaError::NotFound`] when the table does not exist.
    pub fn dims(&self, name: &str) -> Result<usize> {
        Ok(self.meta(name)?.dims)
    }

    /// The nodes that may hold records of `name` inside `region` under the
    /// table's partitioning (partition pruning).
    ///
    /// # Errors
    ///
    /// [`SeaError::NotFound`] when the table does not exist.
    pub fn nodes_for_region(&self, name: &str, region: &Rect) -> Result<Vec<NodeId>> {
        let meta = self.meta(name)?;
        let candidates = meta.partitioning.nodes_for_region(region, self.n_nodes);
        self.telemetry.incr("storage.cluster.prune_checks", 1);
        if candidates.len() < self.n_nodes {
            let pruned = self.n_nodes - candidates.len();
            self.telemetry
                .incr("storage.cluster.nodes_pruned", pruned as u64);
            self.telemetry.event(
                "storage.partition_pruned",
                &[
                    ("table", name.into()),
                    ("partitioning", meta.partitioning.kind().into()),
                    ("candidates", candidates.len().into()),
                    ("pruned", pruned.into()),
                    ("total_nodes", self.n_nodes.into()),
                ],
            );
        }
        Ok(candidates)
    }

    /// Full scan of table `name` on node `node`, charging `meter` for disk
    /// and CPU (layer crossings are charged by the caller, which knows its
    /// access path).
    ///
    /// # Errors
    ///
    /// [`SeaError::NotFound`] for missing table, [`SeaError::Storage`] for
    /// an out-of-range node id.
    pub fn scan_node(
        &self,
        name: &str,
        node: NodeId,
        meter: &mut CostMeter,
    ) -> Result<Vec<Record>> {
        self.scan_node_traced(name, node, &TraceContext::NONE, meter)
    }

    /// [`StorageCluster::scan_node`] with an explicit trace parent: the
    /// scan's `storage.node.scan` span attaches under `parent` (the
    /// caller's per-node span), modelling the executor → storage-node
    /// hop carrying a trace header. With [`TraceContext::NONE`] this is
    /// exactly `scan_node`.
    ///
    /// # Errors
    ///
    /// As [`StorageCluster::scan_node`].
    pub fn scan_node_traced(
        &self,
        name: &str,
        node: NodeId,
        parent: &TraceContext,
        meter: &mut CostMeter,
    ) -> Result<Vec<Record>> {
        let meta = self.meta(name)?;
        let slow = self.fault_gate(node)?;
        let n = self.serving_copy(meta, node)?;
        let span = self.telemetry.span_child_of(parent, "storage.node.scan");
        if self.telemetry.is_enabled() {
            span.tag("node", node);
            span.tag("table", name);
            span.tag("kind", "full");
        }
        let (records, stats) = Self::scan_scaled(meter, slow, |m| n.scan_all_stats(m));
        self.note_scan(name, node, "full", &stats);
        Ok(records)
    }

    /// Telemetry-free full scan of table `name` on node `node`: charges
    /// `meter` exactly like [`StorageCluster::scan_node`] but emits no
    /// spans, counters, or events, and additionally returns the
    /// [`ScanStats`](crate::node::ScanStats). Built for parallel
    /// executors whose workers must stay telemetry-silent so the
    /// coordinator can replay each scan deterministically afterwards via
    /// [`StorageCluster::record_scan`].
    ///
    /// # Errors
    ///
    /// As [`StorageCluster::scan_node`].
    pub fn scan_node_stats(
        &self,
        name: &str,
        node: NodeId,
        meter: &mut CostMeter,
    ) -> Result<(Vec<Record>, crate::node::ScanStats)> {
        let meta = self.meta(name)?;
        let slow = self.fault_gate(node)?;
        let n = self.serving_copy(meta, node)?;
        Ok(Self::scan_scaled(meter, slow, |m| n.scan_all_stats(m)))
    }

    /// Telemetry-free block-pruned scan (the quiet counterpart of
    /// [`StorageCluster::scan_node_region`]; see
    /// [`StorageCluster::scan_node_stats`]).
    ///
    /// # Errors
    ///
    /// As [`StorageCluster::scan_node_region`].
    pub fn scan_node_region_stats(
        &self,
        name: &str,
        node: NodeId,
        region: &Rect,
        meter: &mut CostMeter,
    ) -> Result<(Vec<Record>, crate::node::ScanStats)> {
        let meta = self.meta(name)?;
        SeaError::check_dims(meta.dims, region.dims())?;
        let slow = self.fault_gate(node)?;
        let n = self.serving_copy(meta, node)?;
        Ok(Self::scan_scaled(meter, slow, |m| {
            n.scan_region_stats(region, m)
        }))
    }

    /// Replays the telemetry of one already-performed quiet scan
    /// ([`StorageCluster::scan_node_stats`] /
    /// [`StorageCluster::scan_node_region_stats`]): opens the same
    /// `storage.node.scan` span under `parent` and emits the same
    /// counters and `storage.node.scanned` event the traced scan paths
    /// would have. Calling this from a single coordinator thread in a
    /// fixed node order makes the recorded tables independent of how
    /// many worker threads performed the scans. `kind` is `"full"` or
    /// `"region"`.
    pub fn record_scan(
        &self,
        name: &str,
        node: NodeId,
        kind: &str,
        stats: &crate::node::ScanStats,
        parent: &TraceContext,
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let span = self.telemetry.span_child_of(parent, "storage.node.scan");
        span.tag("node", node);
        span.tag("table", name);
        span.tag("kind", kind);
        self.note_scan(name, node, kind, stats);
    }

    /// Records one node scan into the telemetry sink (no-op when
    /// disabled): `storage.node.*` counters plus a `storage.node.scanned`
    /// event carrying the pruning outcome. Simulated time lives on the
    /// executor's scatter span (only it knows the cost model); storage
    /// spans carry wall time.
    fn note_scan(&self, table: &str, node: NodeId, kind: &str, stats: &crate::node::ScanStats) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.incr("storage.node.scans", 1);
        self.telemetry
            .incr("storage.node.blocks_read", stats.blocks_read as u64);
        self.telemetry.incr(
            "storage.node.blocks_pruned",
            (stats.blocks_total - stats.blocks_read) as u64,
        );
        self.telemetry
            .incr("storage.node.bytes_read", stats.bytes_read);
        self.telemetry.event(
            "storage.node.scanned",
            &[
                ("table", table.into()),
                ("node", node.into()),
                ("kind", kind.into()),
                ("blocks_read", stats.blocks_read.into()),
                ("blocks_total", stats.blocks_total.into()),
                ("bytes_read", stats.bytes_read.into()),
                ("records_returned", stats.records_returned.into()),
            ],
        );
    }

    /// The [`DataNode`] that can serve partition `node`'s data right now:
    /// the primary when it is up, otherwise the chained replica on node
    /// `node + 1` (when replication is on and that node is up).
    fn serving_copy<'a>(&'a self, meta: &'a TableMeta, node: NodeId) -> Result<&'a DataNode> {
        if node >= self.n_nodes {
            return Err(SeaError::Storage(format!("node {node} out of range")));
        }
        if !self.primary_down(node) {
            return Ok(&meta.nodes[node]);
        }
        if let Some(replicas) = &meta.replicas {
            let holder = (node + 1) % self.n_nodes;
            if !self.primary_down(holder) {
                return Ok(&replicas[holder]);
            }
        }
        Err(SeaError::Storage(format!(
            "partition {node} unavailable: node down and no live replica"
        )))
    }

    /// The [`DataNode`] currently serving partition `node` of table
    /// `name`, plus whether that copy is a replica failover (primary
    /// down). This is quiet, metadata-level access for engines that run
    /// their own columnar kernels over [`DataNode::blocks`]; it does
    /// **not** consult the fault gate, so callers must check
    /// [`StorageCluster::has_fault_plan`] first and use the scan API when
    /// a plan is installed.
    ///
    /// # Errors
    ///
    /// [`SeaError::NotFound`] for a missing table, [`SeaError::Storage`]
    /// for an out-of-range node id or an unservable partition (node down
    /// with no live replica).
    pub fn serving_node(&self, name: &str, node: NodeId) -> Result<(&DataNode, bool)> {
        let meta = self.meta(name)?;
        let n = self.serving_copy(meta, node)?;
        Ok((n, self.primary_down(node)))
    }

    /// Runs `scan` charging `meter`, scaling the scan's incremental cost
    /// by `multiplier` (the fault plan's slow-node model: everything the
    /// scan did takes `multiplier`× longer).
    fn scan_scaled<T>(
        meter: &mut CostMeter,
        multiplier: f64,
        scan: impl FnOnce(&mut CostMeter) -> T,
    ) -> T {
        if multiplier == 1.0 {
            return scan(meter);
        }
        let mut local = CostMeter::new();
        let out = scan(&mut local);
        meter.merge_scaled(&local, multiplier);
        out
    }

    /// Block-pruned scan of table `name` on node `node`, returning only
    /// records inside `region` and charging `meter` only for blocks whose
    /// zone map intersects `region`.
    ///
    /// # Errors
    ///
    /// As [`StorageCluster::scan_node`], plus a dimension mismatch when the
    /// region's dimensionality differs from the table's.
    pub fn scan_node_region(
        &self,
        name: &str,
        node: NodeId,
        region: &Rect,
        meter: &mut CostMeter,
    ) -> Result<Vec<Record>> {
        self.scan_node_region_traced(name, node, region, &TraceContext::NONE, meter)
    }

    /// [`StorageCluster::scan_node_region`] with an explicit trace
    /// parent (see [`StorageCluster::scan_node_traced`]).
    ///
    /// # Errors
    ///
    /// As [`StorageCluster::scan_node_region`].
    pub fn scan_node_region_traced(
        &self,
        name: &str,
        node: NodeId,
        region: &Rect,
        parent: &TraceContext,
        meter: &mut CostMeter,
    ) -> Result<Vec<Record>> {
        let meta = self.meta(name)?;
        SeaError::check_dims(meta.dims, region.dims())?;
        let slow = self.fault_gate(node)?;
        let n = self.serving_copy(meta, node)?;
        let span = self.telemetry.span_child_of(parent, "storage.node.scan");
        if self.telemetry.is_enabled() {
            span.tag("node", node);
            span.tag("table", name);
            span.tag("kind", "region");
        }
        let (records, stats) = Self::scan_scaled(meter, slow, |m| n.scan_region_stats(region, m));
        self.note_scan(name, node, "region", &stats);
        Ok(records)
    }

    /// Inserts additional records into an existing table (appended as new
    /// blocks on their partition's node).
    ///
    /// # Errors
    ///
    /// Missing table or dimension mismatch.
    pub fn insert(&mut self, name: &str, records: Vec<Record>) -> Result<()> {
        let n_nodes = self.n_nodes;
        let block_size = self.block_size;
        let meta = self.meta_mut(name)?;
        let dims = meta.dims;
        for r in &records {
            SeaError::check_dims(dims, r.dims())?;
        }
        let mut per_node: Vec<Vec<Record>> = vec![Vec::new(); n_nodes];
        for r in records {
            per_node[meta.partitioning.node_for(&r, n_nodes)].push(r);
        }
        for (node, batch) in meta.nodes.iter_mut().zip(per_node.clone()) {
            if !batch.is_empty() {
                node.append(batch, block_size);
            }
        }
        if let Some(replicas) = &mut meta.replicas {
            for (i, replica) in replicas.iter_mut().enumerate() {
                let src = (i + n_nodes - 1) % n_nodes;
                if !per_node[src].is_empty() {
                    replica.append(per_node[src].clone(), block_size);
                }
            }
        }
        Ok(())
    }

    /// Deletes all records of `name` inside `region`. Returns how many
    /// records were removed.
    ///
    /// # Errors
    ///
    /// Missing table or dimension mismatch.
    pub fn delete_region(&mut self, name: &str, region: &Rect) -> Result<usize> {
        let meta = self.meta_mut(name)?;
        SeaError::check_dims(meta.dims, region.dims())?;
        let in_region = |r: &Record| {
            r.values
                .iter()
                .enumerate()
                .all(|(d, &v)| region.lo()[d] <= v && v <= region.hi()[d])
        };
        let mut removed = 0;
        for node in &mut meta.nodes {
            removed += node.delete_where(in_region);
        }
        if let Some(replicas) = &mut meta.replicas {
            for replica in replicas.iter_mut() {
                replica.delete_where(in_region);
            }
        }
        Ok(removed)
    }

    /// Direct (test/oracle) access to every record of a table, without any
    /// cost accounting. Ground-truth computations use this; engines must
    /// not.
    ///
    /// # Errors
    ///
    /// [`SeaError::NotFound`] when the table does not exist.
    pub fn all_records(&self, name: &str) -> Result<Vec<Record>> {
        let meta = self.meta(name)?;
        let mut out = Vec::new();
        for n in &meta.nodes {
            for b in n.blocks() {
                out.extend(b.to_records());
            }
        }
        Ok(out)
    }

    /// Per-node block metadata (bounds and sizes) for index construction:
    /// `(node, block_index, bounds, bytes, records)` for every non-empty
    /// block. Reading this catalog is free — it models the metadata a
    /// storage engine keeps in memory.
    ///
    /// # Errors
    ///
    /// [`SeaError::NotFound`] when the table does not exist.
    pub fn block_catalog(&self, name: &str) -> Result<Vec<BlockCatalogEntry>> {
        let meta = self.meta(name)?;
        let mut out = Vec::new();
        for (node_id, n) in meta.nodes.iter().enumerate() {
            for (block_idx, b) in n.blocks().iter().enumerate() {
                if let Some(bounds) = b.bounds() {
                    out.push((node_id, block_idx, bounds.clone(), b.bytes(), b.len()));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(i as u64, vec![i as f64 % 100.0, i as f64]))
            .collect()
    }

    fn loaded_cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 50);
        c.load_table("t", sample_records(1000), Partitioning::Hash)
            .unwrap();
        c
    }

    #[test]
    fn load_and_stats() {
        let c = loaded_cluster();
        let s = c.stats("t").unwrap();
        assert_eq!(s.records, 1000);
        assert_eq!(s.dims, 2);
        assert_eq!(s.per_node.iter().sum::<usize>(), 1000);
        assert!(
            s.per_node.iter().all(|&n| n > 150),
            "hash balance: {:?}",
            s.per_node
        );
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = loaded_cluster();
        assert!(matches!(
            c.load_table("t", sample_records(10), Partitioning::Hash),
            Err(SeaError::InvalidArgument(_))
        ));
    }

    #[test]
    fn empty_load_rejected() {
        let mut c = StorageCluster::new(2, 10);
        assert!(matches!(
            c.load_table("e", vec![], Partitioning::Hash),
            Err(SeaError::Empty(_))
        ));
    }

    #[test]
    fn mixed_dims_rejected() {
        let mut c = StorageCluster::new(2, 10);
        let recs = vec![Record::new(0, vec![1.0]), Record::new(1, vec![1.0, 2.0])];
        assert!(c.load_table("m", recs, Partitioning::Hash).is_err());
    }

    #[test]
    fn scan_all_nodes_reads_everything() {
        let c = loaded_cluster();
        let mut total = 0;
        for node in 0..c.num_nodes() {
            let mut meter = CostMeter::new();
            total += c.scan_node("t", node, &mut meter).unwrap().len();
            assert!(meter.disk_bytes > 0);
        }
        assert_eq!(total, 1000);
    }

    #[test]
    fn range_partitioning_prunes_and_finds() {
        let mut c = StorageCluster::new(4, 50);
        let splits = Partitioning::equi_width_splits(0.0, 100.0, 4);
        c.load_table(
            "r",
            sample_records(1000),
            Partitioning::Range { dim: 0, splits },
        )
        .unwrap();
        let region = Rect::new(vec![10.0, 0.0], vec![20.0, 1e9]).unwrap();
        let nodes = c.nodes_for_region("r", &region).unwrap();
        assert_eq!(nodes, vec![0], "10..20 lives on node 0");
        let mut meter = CostMeter::new();
        let hits = c.scan_node_region("r", 0, &region, &mut meter).unwrap();
        // dim0 = i % 100 in [10, 20] → 11 values × 10 repetitions
        assert_eq!(hits.len(), 110);
    }

    #[test]
    fn insert_then_scan_sees_new_records() {
        let mut c = loaded_cluster();
        c.insert(
            "t",
            vec![
                Record::new(5000, vec![1.0, 2.0]),
                Record::new(5001, vec![3.0, 4.0]),
            ],
        )
        .unwrap();
        assert_eq!(c.stats("t").unwrap().records, 1002);
        assert!(c.insert("nope", vec![]).is_err());
        assert!(c.insert("t", vec![Record::new(9, vec![1.0])]).is_err());
    }

    #[test]
    fn delete_region_removes_matching() {
        let mut c = loaded_cluster();
        let region = Rect::new(vec![0.0, 0.0], vec![100.0, 49.0]).unwrap();
        let removed = c.delete_region("t", &region).unwrap();
        assert_eq!(removed, 50, "records with second attr 0..=49");
        assert_eq!(c.stats("t").unwrap().records, 950);
    }

    #[test]
    fn block_catalog_covers_all_records() {
        let c = loaded_cluster();
        let catalog = c.block_catalog("t").unwrap();
        let total: usize = catalog.iter().map(|(_, _, _, _, n)| *n).sum();
        assert_eq!(total, 1000);
        assert!(catalog.iter().all(|(node, ..)| *node < 4));
    }

    #[test]
    fn drop_table() {
        let mut c = loaded_cluster();
        c.drop_table("t").unwrap();
        assert!(matches!(c.stats("t"), Err(SeaError::NotFound(_))));
        assert!(c.drop_table("t").is_err());
    }

    #[test]
    fn all_records_is_cost_free_oracle() {
        let c = loaded_cluster();
        assert_eq!(c.all_records("t").unwrap().len(), 1000);
    }

    #[test]
    fn quiet_scan_plus_record_scan_matches_the_traced_scan() {
        let mut traced = loaded_cluster();
        let traced_sink = TelemetrySink::recording();
        traced.set_telemetry(traced_sink.clone());
        let mut quiet = loaded_cluster();
        let quiet_sink = TelemetrySink::recording();
        quiet.set_telemetry(quiet_sink.clone());

        let region = Rect::new(vec![10.0, 0.0], vec![20.0, 1e9]).unwrap();
        for node in 0..traced.num_nodes() {
            let mut mt = CostMeter::new();
            let rt = traced
                .scan_node_region_traced("t", node, &region, &TraceContext::NONE, &mut mt)
                .unwrap();
            let mut mq = CostMeter::new();
            let (rq, stats) = quiet
                .scan_node_region_stats("t", node, &region, &mut mq)
                .unwrap();
            assert_eq!(
                rt.iter().map(|r| r.id).collect::<Vec<_>>(),
                rq.iter().map(|r| r.id).collect::<Vec<_>>()
            );
            assert_eq!(mt, mq, "quiet scan charges the same simulated cost");
            quiet.record_scan("t", node, "region", &stats, &TraceContext::NONE);
        }
        let ts = traced_sink.snapshot().unwrap();
        let qs = quiet_sink.snapshot().unwrap();
        for counter in [
            "storage.node.scans",
            "storage.node.blocks_read",
            "storage.node.blocks_pruned",
            "storage.node.bytes_read",
        ] {
            assert_eq!(ts.counter(counter), qs.counter(counter), "{counter}");
        }
        assert_eq!(
            ts.event_count("storage.node.scanned"),
            qs.event_count("storage.node.scanned")
        );
        assert_eq!(ts.spans.roots.len(), qs.spans.roots.len());
        assert_eq!(ts.spans.roots[0].name, "storage.node.scan");
        assert_eq!(ts.spans.roots[0].tags, qs.spans.roots[0].tags);
    }

    #[test]
    fn quiet_scans_emit_no_telemetry() {
        let mut c = loaded_cluster();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        let mut meter = CostMeter::new();
        c.scan_node_stats("t", 0, &mut meter).unwrap();
        let region = Rect::new(vec![0.0, 0.0], vec![50.0, 1e9]).unwrap();
        c.scan_node_region_stats("t", 1, &region, &mut meter)
            .unwrap();
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("storage.node.scans"), 0);
        assert!(snap.spans.roots.is_empty());
        assert_eq!(snap.event_count("storage.node.scanned"), 0);
        assert!(meter.disk_bytes > 0, "cost is still charged");
    }
}

#[cfg(test)]
mod replication_tests {
    use super::*;

    fn replicated_cluster() -> StorageCluster {
        let mut c = StorageCluster::with_replication(4, 50);
        let records: Vec<Record> = (0..1000)
            .map(|i| Record::new(i as u64, vec![i as f64 % 100.0, i as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    fn total_scanned(c: &StorageCluster) -> usize {
        (0..c.num_nodes())
            .map(|n| {
                let mut m = CostMeter::new();
                c.scan_node("t", n, &mut m).map(|v| v.len()).unwrap_or(0)
            })
            .sum()
    }

    #[test]
    fn replicated_reads_survive_single_failure() {
        let mut c = replicated_cluster();
        assert_eq!(total_scanned(&c), 1000);
        c.fail_node(2).unwrap();
        assert!(c.is_down(2));
        // Partition 2 is served by the replica on node 3.
        assert_eq!(total_scanned(&c), 1000, "no records lost");
        c.restore_node(2).unwrap();
        assert!(!c.is_down(2));
    }

    #[test]
    fn unreplicated_cluster_loses_partition_on_failure() {
        let mut c = StorageCluster::new(4, 50);
        let records: Vec<Record> = (0..100)
            .map(|i| Record::new(i as u64, vec![i as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c.fail_node(1).unwrap();
        let mut m = CostMeter::new();
        assert!(matches!(
            c.scan_node("t", 1, &mut m),
            Err(SeaError::Storage(_))
        ));
    }

    #[test]
    fn double_failure_of_adjacent_nodes_loses_data() {
        let mut c = replicated_cluster();
        c.fail_node(2).unwrap();
        c.fail_node(3).unwrap(); // node 3 held node 2's replica
        let mut m = CostMeter::new();
        assert!(c.scan_node("t", 2, &mut m).is_err());
        // Non-adjacent partitions are still fine.
        assert!(c.scan_node("t", 0, &mut m).is_ok());
    }

    #[test]
    fn inserts_and_deletes_propagate_to_replicas() {
        let mut c = replicated_cluster();
        c.insert("t", vec![Record::new(5000, vec![5.0, 5.0])])
            .unwrap();
        let removed = c
            .delete_region("t", &Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap())
            .unwrap();
        assert!(removed > 0);
        // Fail each node in turn: replica contents must match the
        // post-update state (insert visible, deletes applied).
        let baseline = total_scanned(&c);
        for node in 0..4 {
            c.fail_node(node).unwrap();
            assert_eq!(total_scanned(&c), baseline, "node {node} failover");
            c.restore_node(node).unwrap();
        }
    }

    #[test]
    fn updates_during_failure_reconverge_and_never_double_count() {
        let mut c = replicated_cluster();
        let probe = Rect::new(vec![40.0, 0.0], vec![49.0, 1e9]).unwrap();
        // Ground truth over primaries only: what an honest delete count
        // looks like.
        let expected = {
            let recs = c.all_records("t").unwrap();
            recs.iter()
                .filter(|r| (40.0..=49.0).contains(&r.values[0]))
                .count()
        };
        c.fail_node(2).unwrap();
        // Updates land while a node is down: one record inside the
        // soon-to-be-deleted region, one outside it.
        c.insert(
            "t",
            vec![
                Record::new(7000, vec![45.0, 4500.0]),
                Record::new(7001, vec![80.0, 8000.0]),
            ],
        )
        .unwrap();
        let removed = c.delete_region("t", &probe).unwrap();
        // Every partition also exists as a replica; a count that included
        // replica removals would report roughly double.
        assert_eq!(removed, expected + 1, "delete counts primary removals only");
        let during = total_scanned(&c);
        assert_eq!(
            during,
            1000 + 2 - removed,
            "reads during the failure see the updates through replicas"
        );
        c.restore_node(2).unwrap();
        assert_eq!(
            total_scanned(&c),
            during,
            "restored primary reconverges with the updates applied while it was down"
        );
    }

    #[test]
    fn region_scans_work_through_replicas() {
        let mut c = replicated_cluster();
        let region = Rect::new(vec![10.0, 0.0], vec![20.0, 1e9]).unwrap();
        let count_before: usize = (0..4)
            .map(|n| {
                let mut m = CostMeter::new();
                c.scan_node_region("t", n, &region, &mut m).unwrap().len()
            })
            .sum();
        c.fail_node(0).unwrap();
        let count_after: usize = (0..4)
            .map(|n| {
                let mut m = CostMeter::new();
                c.scan_node_region("t", n, &region, &mut m).unwrap().len()
            })
            .sum();
        assert_eq!(count_before, count_after);
    }

    #[test]
    fn fail_validation() {
        let mut c = replicated_cluster();
        assert!(c.fail_node(99).is_err());
        assert!(c.restore_node(99).is_err());
        assert!(!c.is_down(99));
        assert_eq!(c.replication(), 2);
        assert_eq!(StorageCluster::new(2, 10).replication(), 1);
    }
}
