//! A single simulated data-server node.

use serde::{Deserialize, Serialize};

use sea_common::{CostMeter, Record, Rect};

/// A storage block: the unit of disk I/O. Blocks carry the bounding
/// rectangle of their records so engines can prune irrelevant blocks
/// without reading them (the zone-map style metadata that makes "surgical"
/// access possible at all).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    records: Vec<Record>,
    bounds: Option<Rect>,
    bytes: u64,
}

impl Block {
    /// Builds a block from records, computing bounds and size.
    pub fn new(records: Vec<Record>) -> Self {
        let bounds = bounds_of(&records);
        let bytes = records.iter().map(Record::storage_bytes).sum();
        Block {
            records,
            bounds,
            bytes,
        }
    }

    /// Records stored in the block.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Bounding rectangle of the block's records (`None` for empty blocks).
    pub fn bounds(&self) -> Option<&Rect> {
        self.bounds.as_ref()
    }

    /// Serialized size in bytes (what a disk read of this block costs).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

fn bounds_of(records: &[Record]) -> Option<Rect> {
    let first = records.first()?;
    let dims = first.dims();
    let mut lo = first.values.clone();
    let mut hi = first.values.clone();
    for r in &records[1..] {
        for d in 0..dims.min(r.dims()) {
            // NaN values (missing data) are excluded from bounds.
            let v = r.value(d);
            if v.is_nan() {
                continue;
            }
            if v < lo[d] {
                lo[d] = v;
            }
            if v > hi[d] {
                hi[d] = v;
            }
        }
    }
    // Records with NaN in the first row would poison bounds; sanitize.
    for d in 0..dims {
        if lo[d].is_nan() || hi[d].is_nan() {
            lo[d] = f64::NEG_INFINITY.max(-1e300);
            hi[d] = f64::INFINITY.min(1e300);
        }
    }
    Rect::new(lo, hi).ok()
}

/// What one scan of a [`DataNode`] actually touched — the raw material
/// for `storage.node.*` telemetry (block counts and bytes are not
/// recoverable from a [`CostMeter`] alone once merged upstream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Blocks the node holds for the scanned table.
    pub blocks_total: usize,
    /// Blocks whose contents were actually read.
    pub blocks_read: usize,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Records returned to the caller (post-filtering).
    pub records_returned: usize,
}

/// One simulated data-server node: a list of blocks per table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataNode {
    blocks: Vec<Block>,
}

impl DataNode {
    /// A node with no blocks.
    pub fn new() -> Self {
        DataNode::default()
    }

    /// Appends records as new blocks of at most `block_size` records.
    pub fn append(&mut self, records: Vec<Record>, block_size: usize) {
        let block_size = block_size.max(1);
        let mut buf = records;
        while !buf.is_empty() {
            let rest = buf.split_off(buf.len().min(block_size));
            self.blocks.push(Block::new(buf));
            buf = rest;
        }
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total records on this node.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Whether the node stores no records.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(Block::is_empty)
    }

    /// Total bytes on this node.
    pub fn bytes(&self) -> u64 {
        self.blocks.iter().map(Block::bytes).sum()
    }

    /// Reads **every** block, charging `meter` one read *per block*: the
    /// BDAS full-scan path launches a task per block/split, so each block
    /// carries a seek-equivalent scheduling overhead (the per-layer tax is
    /// charged separately by callers via `touch_node`). Returns references
    /// to all records.
    pub fn scan_all<'a>(&'a self, meter: &mut CostMeter) -> Vec<&'a Record> {
        self.scan_all_stats(meter).0
    }

    /// [`DataNode::scan_all`] plus the [`ScanStats`] describing what the
    /// scan touched (identical cost charges).
    pub fn scan_all_stats<'a>(&'a self, meter: &mut CostMeter) -> (Vec<&'a Record>, ScanStats) {
        let mut out = Vec::with_capacity(self.len());
        let mut bytes_read = 0u64;
        for b in &self.blocks {
            meter.charge_disk_read(b.bytes());
            meter.charge_cpu(b.len() as u64);
            bytes_read += b.bytes();
            out.extend(b.records().iter());
        }
        let stats = ScanStats {
            blocks_total: self.blocks.len(),
            blocks_read: self.blocks.len(),
            bytes_read,
            records_returned: out.len(),
        };
        (out, stats)
    }

    /// Reads only blocks whose bounds intersect `region`, charging `meter`
    /// one *sequential* read (single seek) covering the selected blocks —
    /// the coordinator path reads pruned block ranges in one sweep — and
    /// returns the records inside `region`'s bounding box. Blocks with no
    /// bounds (empty) are skipped free.
    pub fn scan_region<'a>(&'a self, region: &Rect, meter: &mut CostMeter) -> Vec<&'a Record> {
        self.scan_region_stats(region, meter).0
    }

    /// [`DataNode::scan_region`] plus the [`ScanStats`] describing how
    /// many blocks the zone maps pruned (identical cost charges).
    pub fn scan_region_stats<'a>(
        &'a self,
        region: &Rect,
        meter: &mut CostMeter,
    ) -> (Vec<&'a Record>, ScanStats) {
        let mut out = Vec::new();
        let mut read_bytes = 0u64;
        let mut blocks_read = 0usize;
        for b in &self.blocks {
            let Some(bounds) = b.bounds() else { continue };
            if !bounds.intersects(region) {
                continue; // zone map consulted, block skipped: free
            }
            read_bytes += b.bytes();
            blocks_read += 1;
            meter.charge_cpu(b.len() as u64);
            out.extend(b.records().iter().filter(|r| {
                r.dims() == region.dims()
                    && r.values
                        .iter()
                        .enumerate()
                        .all(|(d, &v)| region.lo()[d] <= v && v <= region.hi()[d])
            }));
        }
        if read_bytes > 0 {
            meter.charge_disk_read(read_bytes);
        }
        let stats = ScanStats {
            blocks_total: self.blocks.len(),
            blocks_read,
            bytes_read: read_bytes,
            records_returned: out.len(),
        };
        (out, stats)
    }

    /// Deletes records matching `pred`, rebuilding affected blocks.
    /// Returns the number of records removed.
    pub fn delete_where(&mut self, pred: impl Fn(&Record) -> bool) -> usize {
        let mut removed = 0;
        for b in &mut self.blocks {
            let before = b.records.len();
            b.records.retain(|r| !pred(r));
            if b.records.len() != before {
                removed += before - b.records.len();
                *b = Block::new(std::mem::take(&mut b.records));
            }
        }
        self.blocks.retain(|b| !b.is_empty());
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(i as u64, vec![i as f64, (i * 2) as f64]))
            .collect()
    }

    #[test]
    fn append_chunks_into_blocks() {
        let mut node = DataNode::new();
        node.append(recs(25), 10);
        assert_eq!(node.blocks().len(), 3);
        assert_eq!(node.len(), 25);
        assert_eq!(node.blocks()[0].len(), 10);
        assert_eq!(node.blocks()[2].len(), 5);
    }

    #[test]
    fn block_bounds_cover_records() {
        let b = Block::new(recs(10));
        let bounds = b.bounds().unwrap();
        assert_eq!(bounds.lo(), &[0.0, 0.0]);
        assert_eq!(bounds.hi(), &[9.0, 18.0]);
        assert_eq!(b.bytes(), 10 * (8 + 16));
    }

    #[test]
    fn scan_all_charges_everything() {
        let mut node = DataNode::new();
        node.append(recs(100), 10);
        let mut meter = CostMeter::new();
        let all = node.scan_all(&mut meter);
        assert_eq!(all.len(), 100);
        assert_eq!(meter.disk_seeks, 10);
        assert_eq!(meter.disk_bytes, node.bytes());
        assert_eq!(meter.records_processed, 100);
    }

    #[test]
    fn scan_region_prunes_blocks() {
        let mut node = DataNode::new();
        node.append(recs(100), 10); // block i covers dim0 in [10i, 10i+9]
        let mut meter = CostMeter::new();
        let region = Rect::new(vec![15.0, 0.0], vec![24.0, 1e9]).unwrap();
        let hits = node.scan_region(&region, &mut meter);
        assert_eq!(hits.len(), 10, "values 15..=24");
        assert_eq!(meter.disk_seeks, 1, "one sequential read over 2 blocks");
        assert!(meter.disk_bytes < node.bytes() / 2);
    }

    #[test]
    fn scan_region_returns_only_contained_records() {
        let mut node = DataNode::new();
        node.append(recs(20), 20); // one block
        let mut meter = CostMeter::new();
        let region = Rect::new(vec![5.0, 0.0], vec![7.0, 1e9]).unwrap();
        let hits = node.scan_region(&region, &mut meter);
        let ids: Vec<u64> = hits.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![5, 6, 7]);
    }

    #[test]
    fn delete_where_rebuilds_bounds() {
        let mut node = DataNode::new();
        node.append(recs(10), 10);
        let removed = node.delete_where(|r| r.value(0) >= 5.0);
        assert_eq!(removed, 5);
        assert_eq!(node.len(), 5);
        let bounds = node.blocks()[0].bounds().unwrap();
        assert_eq!(bounds.hi()[0], 4.0, "bounds shrunk after delete");
    }

    #[test]
    fn delete_everything_leaves_empty_node() {
        let mut node = DataNode::new();
        node.append(recs(10), 3);
        assert_eq!(node.delete_where(|_| true), 10);
        assert!(node.is_empty());
        assert_eq!(node.blocks().len(), 0);
    }

    #[test]
    fn nan_values_do_not_poison_bounds() {
        let records = vec![
            Record::new(0, vec![1.0, f64::NAN]),
            Record::new(1, vec![3.0, 5.0]),
        ];
        let b = Block::new(records);
        let bounds = b.bounds().unwrap();
        assert_eq!(bounds.lo()[0], 1.0);
        assert_eq!(bounds.hi()[0], 3.0);
        assert!(bounds.lo()[1].is_finite());
        assert!(bounds.hi()[1].is_finite());
    }
}
