//! A single simulated data-server node.

use serde::{Deserialize, Serialize};

use sea_common::{kernels, CostMeter, Record, RecordId, Rect, Region, SelectionMask};

/// A storage block: the unit of disk I/O, stored **column-major**.
///
/// Records are decomposed on ingest into a contiguous id column plus one
/// `Vec<f64>` per dimension, with a validity bitmap per column marking
/// non-NaN (present) values. Scans evaluate predicates as selection
/// bitmaps over the dimension arrays — tight slice loops the compiler
/// autovectorizes — and only then gather or materialize the selected
/// values.
///
/// Blocks also carry the bounding rectangle of their records so engines
/// can prune irrelevant blocks without reading them (the zone-map style
/// metadata that makes "surgical" access possible at all). Bounds are
/// computed per dimension over *valid* values only, seeded from the
/// first non-NaN value, so missing data never widens a zone map.
///
/// Rows shorter than the block arity (the max dimensionality seen at
/// build time) are padded with NaN/invalid entries; clusters enforce
/// uniform dimensionality per table, so padding only arises for ad-hoc
/// node use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    ids: Vec<RecordId>,
    cols: Vec<Vec<f64>>,
    validity: Vec<SelectionMask>,
    bounds: Option<Rect>,
    bytes: u64,
}

impl Block {
    /// Builds a block from records, decomposing them into columns and
    /// computing validity bitmaps, zone-map bounds, and serialized size.
    pub fn new(records: Vec<Record>) -> Self {
        let bytes = records.iter().map(Record::storage_bytes).sum();
        let n = records.len();
        let dims = records.iter().map(Record::dims).max().unwrap_or(0);
        let ids = records.iter().map(|r| r.id).collect();
        let mut cols: Vec<Vec<f64>> = Vec::with_capacity(dims);
        for d in 0..dims {
            cols.push(
                records
                    .iter()
                    .map(|r| r.values.get(d).copied().unwrap_or(f64::NAN))
                    .collect(),
            );
        }
        let validity: Vec<SelectionMask> =
            cols.iter().map(|c| SelectionMask::from_valid(c)).collect();
        let bounds = bounds_of(&cols, &validity, n);
        Block {
            ids,
            cols,
            validity,
            bounds,
            bytes,
        }
    }

    /// The id column.
    pub fn ids(&self) -> &[RecordId] {
        &self.ids
    }

    /// Number of dimensions (columns) in the block.
    pub fn dims(&self) -> usize {
        self.cols.len()
    }

    /// The values of dimension `d`, one entry per row (NaN = missing).
    pub fn col(&self, d: usize) -> &[f64] {
        &self.cols[d]
    }

    /// All dimension columns.
    pub fn cols(&self) -> &[Vec<f64>] {
        &self.cols
    }

    /// The validity bitmap of dimension `d` (bit set = value present).
    pub fn validity(&self, d: usize) -> &SelectionMask {
        &self.validity[d]
    }

    /// Bounding rectangle of the block's records (`None` for empty blocks).
    pub fn bounds(&self) -> Option<&Rect> {
        self.bounds.as_ref()
    }

    /// Serialized size in bytes (what a disk read of this block costs).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Materializes row `i` back into a [`Record`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn record(&self, i: usize) -> Record {
        Record::new(self.ids[i], self.cols.iter().map(|c| c[i]).collect())
    }

    /// Materializes every row back into [`Record`]s, in row order.
    pub fn to_records(&self) -> Vec<Record> {
        (0..self.len()).map(|i| self.record(i)).collect()
    }

    /// Selection bitmap of rows inside the inclusive box `region` — the
    /// columnar equivalent of the row filter `r.dims() == region.dims()
    /// && ∀d: lo[d] <= v[d] <= hi[d]`. A dimensionality mismatch selects
    /// nothing; NaN (missing) values never match.
    pub fn bbox_mask(&self, region: &Rect) -> SelectionMask {
        if self.dims() != region.dims() {
            return SelectionMask::none(self.len());
        }
        kernels::range_mask(&self.cols, self.len(), region.lo(), region.hi())
    }

    /// Selection bitmap of rows inside `region`, bit-identical to
    /// filtering materialized rows through `region.contains_record`.
    pub fn region_mask(&self, region: &Region) -> SelectionMask {
        match region {
            Region::Range(r) => self.bbox_mask(r),
            Region::Radius(b) => {
                if self.dims() != b.dims() {
                    return SelectionMask::none(self.len());
                }
                kernels::ball_mask(&self.cols, self.len(), b.center().coords(), b.radius())
            }
            // Future region variants: fall back to the row-at-a-time check.
            other => {
                let mut m = SelectionMask::none(self.len());
                for i in 0..self.len() {
                    if other.contains_record(&self.record(i)) {
                        m.set(i);
                    }
                }
                m
            }
        }
    }
}

/// Zone-map bounds over columns: per dimension, the min/max of *valid*
/// (non-NaN) values, seeded from the first valid value so a leading NaN
/// can never poison the bounds. Dimensions with no valid value at all
/// fall back to wide ±1e300 sentinels (conservative: never prunes).
fn bounds_of(cols: &[Vec<f64>], validity: &[SelectionMask], n: usize) -> Option<Rect> {
    if n == 0 || cols.is_empty() {
        return None;
    }
    let mut lo = Vec::with_capacity(cols.len());
    let mut hi = Vec::with_capacity(cols.len());
    for (col, valid) in cols.iter().zip(validity) {
        let mut d_lo = f64::NAN;
        let mut d_hi = f64::NAN;
        valid.for_each_set(|i| {
            let v = col[i];
            if d_lo.is_nan() {
                d_lo = v;
                d_hi = v;
            } else {
                if v < d_lo {
                    d_lo = v;
                }
                if v > d_hi {
                    d_hi = v;
                }
            }
        });
        if d_lo.is_nan() || d_hi.is_nan() {
            d_lo = -1e300;
            d_hi = 1e300;
        }
        lo.push(d_lo);
        hi.push(d_hi);
    }
    Rect::new(lo, hi).ok()
}

/// What one scan of a [`DataNode`] actually touched — the raw material
/// for `storage.node.*` telemetry (block counts and bytes are not
/// recoverable from a [`CostMeter`] alone once merged upstream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Blocks the node holds for the scanned table.
    pub blocks_total: usize,
    /// Blocks whose contents were actually read.
    pub blocks_read: usize,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Records returned to the caller (post-filtering).
    pub records_returned: usize,
}

/// One simulated data-server node: a list of columnar blocks per table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataNode {
    blocks: Vec<Block>,
}

impl DataNode {
    /// A node with no blocks.
    pub fn new() -> Self {
        DataNode::default()
    }

    /// Appends records as new blocks of at most `block_size` records.
    pub fn append(&mut self, records: Vec<Record>, block_size: usize) {
        let block_size = block_size.max(1);
        let mut buf = records;
        while !buf.is_empty() {
            let rest = buf.split_off(buf.len().min(block_size));
            self.blocks.push(Block::new(buf));
            buf = rest;
        }
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total records on this node.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Whether the node stores no records.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(Block::is_empty)
    }

    /// Total bytes on this node.
    pub fn bytes(&self) -> u64 {
        self.blocks.iter().map(Block::bytes).sum()
    }

    /// Reads **every** block, charging `meter` one read *per block*: the
    /// BDAS full-scan path launches a task per block/split, so each block
    /// carries a seek-equivalent scheduling overhead (the per-layer tax is
    /// charged separately by callers via `touch_node`). Returns all
    /// records, materialized in row order.
    pub fn scan_all(&self, meter: &mut CostMeter) -> Vec<Record> {
        self.scan_all_stats(meter).0
    }

    /// [`DataNode::scan_all`] plus the [`ScanStats`] describing what the
    /// scan touched (identical cost charges).
    pub fn scan_all_stats(&self, meter: &mut CostMeter) -> (Vec<Record>, ScanStats) {
        let mut out = Vec::with_capacity(self.len());
        let mut bytes_read = 0u64;
        for b in &self.blocks {
            meter.charge_disk_read(b.bytes());
            meter.charge_cpu(b.len() as u64);
            bytes_read += b.bytes();
            out.extend(b.to_records());
        }
        let stats = ScanStats {
            blocks_total: self.blocks.len(),
            blocks_read: self.blocks.len(),
            bytes_read,
            records_returned: out.len(),
        };
        (out, stats)
    }

    /// Reads only blocks whose bounds intersect `region`, charging `meter`
    /// one *sequential* read (single seek) covering the selected blocks —
    /// the coordinator path reads pruned block ranges in one sweep — and
    /// returns the records inside `region`'s bounding box. Blocks with no
    /// bounds (empty) are skipped free.
    pub fn scan_region(&self, region: &Rect, meter: &mut CostMeter) -> Vec<Record> {
        self.scan_region_stats(region, meter).0
    }

    /// [`DataNode::scan_region`] plus the [`ScanStats`] describing how
    /// many blocks the zone maps pruned (identical cost charges).
    pub fn scan_region_stats(
        &self,
        region: &Rect,
        meter: &mut CostMeter,
    ) -> (Vec<Record>, ScanStats) {
        let mut out = Vec::new();
        let mut read_bytes = 0u64;
        let mut blocks_read = 0usize;
        for b in &self.blocks {
            let Some(bounds) = b.bounds() else { continue };
            if !bounds.intersects(region) {
                continue; // zone map consulted, block skipped: free
            }
            read_bytes += b.bytes();
            blocks_read += 1;
            meter.charge_cpu(b.len() as u64);
            b.bbox_mask(region).for_each_set(|i| out.push(b.record(i)));
        }
        if read_bytes > 0 {
            meter.charge_disk_read(read_bytes);
        }
        let stats = ScanStats {
            blocks_total: self.blocks.len(),
            blocks_read,
            bytes_read: read_bytes,
            records_returned: out.len(),
        };
        (out, stats)
    }

    /// Deletes records matching `pred`, rebuilding affected blocks.
    /// Returns the number of records removed.
    pub fn delete_where(&mut self, pred: impl Fn(&Record) -> bool) -> usize {
        let mut removed = 0;
        for b in &mut self.blocks {
            let before = b.len();
            let mut keep = b.to_records();
            keep.retain(|r| !pred(r));
            if keep.len() != before {
                removed += before - keep.len();
                *b = Block::new(keep);
            }
        }
        self.blocks.retain(|b| !b.is_empty());
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(i as u64, vec![i as f64, (i * 2) as f64]))
            .collect()
    }

    #[test]
    fn append_chunks_into_blocks() {
        let mut node = DataNode::new();
        node.append(recs(25), 10);
        assert_eq!(node.blocks().len(), 3);
        assert_eq!(node.len(), 25);
        assert_eq!(node.blocks()[0].len(), 10);
        assert_eq!(node.blocks()[2].len(), 5);
    }

    #[test]
    fn block_bounds_cover_records() {
        let b = Block::new(recs(10));
        let bounds = b.bounds().unwrap();
        assert_eq!(bounds.lo(), &[0.0, 0.0]);
        assert_eq!(bounds.hi(), &[9.0, 18.0]);
        assert_eq!(b.bytes(), 10 * (8 + 16));
    }

    #[test]
    fn columnar_round_trip_preserves_records() {
        let original = recs(25);
        let b = Block::new(original.clone());
        assert_eq!(b.dims(), 2);
        assert_eq!(&b.ids()[..3], &[0, 1, 2]);
        assert_eq!(b.col(0)[7], 7.0);
        assert_eq!(b.col(1)[7], 14.0);
        assert_eq!(b.to_records(), original);
        assert_eq!(b.record(3), original[3]);
    }

    #[test]
    fn validity_bitmaps_track_missing_values() {
        let b = Block::new(vec![
            Record::new(0, vec![1.0, f64::NAN]),
            Record::new(1, vec![2.0, 5.0]),
        ]);
        assert_eq!(b.validity(0).count(), 2);
        assert_eq!(b.validity(1).to_indices(), vec![1]);
    }

    #[test]
    fn empty_block_has_no_bounds() {
        let b = Block::new(Vec::new());
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert!(b.bounds().is_none());
        assert!(b.to_records().is_empty());
    }

    #[test]
    fn scan_all_charges_everything() {
        let mut node = DataNode::new();
        node.append(recs(100), 10);
        let mut meter = CostMeter::new();
        let all = node.scan_all(&mut meter);
        assert_eq!(all.len(), 100);
        assert_eq!(meter.disk_seeks, 10);
        assert_eq!(meter.disk_bytes, node.bytes());
        assert_eq!(meter.records_processed, 100);
    }

    #[test]
    fn scan_region_prunes_blocks() {
        let mut node = DataNode::new();
        node.append(recs(100), 10); // block i covers dim0 in [10i, 10i+9]
        let mut meter = CostMeter::new();
        let region = Rect::new(vec![15.0, 0.0], vec![24.0, 1e9]).unwrap();
        let hits = node.scan_region(&region, &mut meter);
        assert_eq!(hits.len(), 10, "values 15..=24");
        assert_eq!(meter.disk_seeks, 1, "one sequential read over 2 blocks");
        assert!(meter.disk_bytes < node.bytes() / 2);
    }

    #[test]
    fn scan_region_returns_only_contained_records() {
        let mut node = DataNode::new();
        node.append(recs(20), 20); // one block
        let mut meter = CostMeter::new();
        let region = Rect::new(vec![5.0, 0.0], vec![7.0, 1e9]).unwrap();
        let hits = node.scan_region(&region, &mut meter);
        let ids: Vec<u64> = hits.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![5, 6, 7]);
    }

    #[test]
    fn delete_where_rebuilds_bounds() {
        let mut node = DataNode::new();
        node.append(recs(10), 10);
        let removed = node.delete_where(|r| r.value(0) >= 5.0);
        assert_eq!(removed, 5);
        assert_eq!(node.len(), 5);
        let bounds = node.blocks()[0].bounds().unwrap();
        assert_eq!(bounds.hi()[0], 4.0, "bounds shrunk after delete");
    }

    #[test]
    fn delete_everything_leaves_empty_node() {
        let mut node = DataNode::new();
        node.append(recs(10), 3);
        assert_eq!(node.delete_where(|_| true), 10);
        assert!(node.is_empty());
        assert_eq!(node.blocks().len(), 0);
    }

    #[test]
    fn nan_values_do_not_poison_bounds() {
        let records = vec![
            Record::new(0, vec![1.0, f64::NAN]),
            Record::new(1, vec![3.0, 5.0]),
        ];
        let b = Block::new(records);
        let bounds = b.bounds().unwrap();
        assert_eq!(bounds.lo()[0], 1.0);
        assert_eq!(bounds.hi()[0], 3.0);
        // Regression: a NaN in the *first* record used to poison the whole
        // dimension to ±1e300 sentinels. Bounds must be tight, not merely
        // finite — the only valid value in dim 1 is 5.0.
        assert_eq!(bounds.lo()[1], 5.0);
        assert_eq!(bounds.hi()[1], 5.0);
    }

    #[test]
    fn leading_nan_keeps_bounds_tight_for_pruning() {
        let records = vec![
            Record::new(0, vec![f64::NAN, 2.0]),
            Record::new(1, vec![5.0, 3.0]),
            Record::new(2, vec![7.0, 1.0]),
        ];
        let bounds = Block::new(records).bounds().unwrap().clone();
        assert_eq!((bounds.lo()[0], bounds.hi()[0]), (5.0, 7.0));
        // Tight bounds mean a disjoint region can actually prune the block.
        let far = Rect::new(vec![100.0, 0.0], vec![200.0, 10.0]).unwrap();
        assert!(!bounds.intersects(&far));
    }

    #[test]
    fn all_nan_dimension_falls_back_to_wide_sentinels() {
        let records = vec![
            Record::new(0, vec![1.0, f64::NAN]),
            Record::new(1, vec![2.0, f64::NAN]),
        ];
        let bounds = Block::new(records).bounds().unwrap().clone();
        assert_eq!((bounds.lo()[0], bounds.hi()[0]), (1.0, 2.0));
        assert!(bounds.lo()[1].is_finite() && bounds.lo()[1] <= -1e300);
        assert!(bounds.hi()[1].is_finite() && bounds.hi()[1] >= 1e300);
    }

    #[test]
    fn region_mask_matches_row_filter() {
        let records: Vec<Record> = (0..50)
            .map(|i| Record::new(i, vec![i as f64, (i % 7) as f64]))
            .collect();
        let b = Block::new(records.clone());
        let rect = Rect::new(vec![10.0, 1.0], vec![30.0, 4.0]).unwrap();
        let region = Region::Range(rect.clone());
        let want: Vec<usize> = (0..records.len())
            .filter(|&i| region.contains_record(&records[i]))
            .collect();
        assert_eq!(b.bbox_mask(&rect).to_indices(), want);
        assert_eq!(b.region_mask(&region).to_indices(), want);
        // Dimensionality mismatch selects nothing, like the row filter.
        let skinny = Rect::new(vec![0.0], vec![100.0]).unwrap();
        assert!(b.bbox_mask(&skinny).is_none_set());
    }
}
