//! Table partitioning policies.

use serde::{Deserialize, Serialize};

use sea_common::{Record, Rect};

/// Identifier of a data node within a [`crate::StorageCluster`].
pub type NodeId = usize;

/// How a table's records are assigned to data nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Partitioning {
    /// Records are spread across all nodes by record-id hash. Every
    /// selection must engage every node (the common HDFS-style layout).
    Hash,
    /// Records are range-partitioned on attribute `dim` with the given
    /// split points: node `i` holds values in `[splits[i-1], splits[i])`
    /// (node 0 takes everything below `splits\[0\]`, the last node everything
    /// at or above the last split). Selections that constrain `dim` can
    /// prune nodes.
    Range {
        /// The partitioning attribute.
        dim: usize,
        /// Ascending split points; `splits.len() + 1` nodes are addressed.
        splits: Vec<f64>,
    },
}

impl Partitioning {
    /// Short policy name (`"hash"` / `"range"`) used in telemetry event
    /// payloads such as `storage.partition_pruned`.
    pub fn kind(&self) -> &'static str {
        match self {
            Partitioning::Hash => "hash",
            Partitioning::Range { .. } => "range",
        }
    }

    /// The node a record belongs to, given `n_nodes` nodes.
    ///
    /// Range partitioning routes a record whose partitioning attribute is
    /// NaN (missing) to **node 0** by convention. Such records are
    /// invisible to [`Partitioning::nodes_for_region`] pruning, which is
    /// consistent rather than lossy: a NaN value never satisfies any
    /// range predicate, so no region scan can match the record anyway —
    /// only full scans (which engage every node) can see it.
    pub fn node_for(&self, record: &Record, n_nodes: usize) -> NodeId {
        match self {
            Partitioning::Hash => {
                // Fibonacci hash of the record id: deterministic, well mixed.
                (record.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n_nodes
            }
            Partitioning::Range { dim, splits } => {
                let v = record.value(*dim);
                if v.is_nan() {
                    return 0;
                }
                let idx = splits.partition_point(|s| *s <= v);
                idx.min(n_nodes.saturating_sub(1))
            }
        }
    }

    /// The set of nodes that may hold records inside `region` (its
    /// axis-aligned bounding rectangle), given `n_nodes` nodes. Hash
    /// partitioning cannot prune; range partitioning returns only nodes
    /// whose value interval overlaps the region's interval in the
    /// partitioning dimension.
    pub fn nodes_for_region(&self, region: &Rect, n_nodes: usize) -> Vec<NodeId> {
        if n_nodes == 0 {
            return Vec::new();
        }
        match self {
            Partitioning::Hash => (0..n_nodes).collect(),
            Partitioning::Range { dim, splits } => {
                if *dim >= region.dims() {
                    return (0..n_nodes).collect();
                }
                let lo = region.lo()[*dim];
                let hi = region.hi()[*dim];
                let first = splits.partition_point(|s| *s <= lo).min(n_nodes - 1);
                let last = splits.partition_point(|s| *s <= hi).min(n_nodes - 1);
                (first..=last).collect()
            }
        }
    }

    /// Builds equi-width range splits over `[lo, hi]` for `n_nodes` nodes.
    ///
    /// Degenerate inputs — `n_nodes <= 1`, a non-finite bound, or an
    /// inverted interval (`lo > hi`) — yield **no** splits rather than
    /// NaN or descending split points that would silently corrupt
    /// `partition_point` routing. An empty split list routes every record
    /// to node 0 and prunes every region to node 0, which stays
    /// internally consistent.
    pub fn equi_width_splits(lo: f64, hi: f64, n_nodes: usize) -> Vec<f64> {
        if n_nodes <= 1 || !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Vec::new();
        }
        let width = (hi - lo) / n_nodes as f64;
        (1..n_nodes).map(|i| lo + width * i as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_spreads_records() {
        let p = Partitioning::Hash;
        let mut counts = vec![0usize; 4];
        for id in 0..4000u64 {
            let r = Record::new(id, vec![0.0]);
            counts[p.node_for(&r, 4)] += 1;
        }
        for c in &counts {
            assert!(*c > 800 && *c < 1200, "balanced-ish: {counts:?}");
        }
    }

    #[test]
    fn hash_cannot_prune() {
        let p = Partitioning::Hash;
        let region = Rect::new(vec![0.0], vec![0.1]).unwrap();
        assert_eq!(p.nodes_for_region(&region, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn range_assigns_by_split() {
        let p = Partitioning::Range {
            dim: 0,
            splits: vec![10.0, 20.0],
        };
        assert_eq!(p.node_for(&Record::new(0, vec![5.0]), 3), 0);
        assert_eq!(p.node_for(&Record::new(1, vec![10.0]), 3), 1);
        assert_eq!(p.node_for(&Record::new(2, vec![15.0]), 3), 1);
        assert_eq!(p.node_for(&Record::new(3, vec![25.0]), 3), 2);
    }

    #[test]
    fn range_prunes_nodes() {
        let p = Partitioning::Range {
            dim: 0,
            splits: vec![10.0, 20.0, 30.0],
        };
        let region = Rect::new(vec![12.0, 0.0], vec![18.0, 1.0]).unwrap();
        assert_eq!(p.nodes_for_region(&region, 4), vec![1]);
        let wide = Rect::new(vec![5.0, 0.0], vec![25.0, 1.0]).unwrap();
        assert_eq!(p.nodes_for_region(&wide, 4), vec![0, 1, 2]);
    }

    #[test]
    fn range_on_unconstrained_dim_touches_all() {
        let p = Partitioning::Range {
            dim: 5,
            splits: vec![10.0],
        };
        let region = Rect::new(vec![0.0], vec![1.0]).unwrap();
        assert_eq!(p.nodes_for_region(&region, 2), vec![0, 1]);
    }

    #[test]
    fn equi_width_splits_are_ascending() {
        let s = Partitioning::equi_width_splits(0.0, 100.0, 4);
        assert_eq!(s, vec![25.0, 50.0, 75.0]);
        assert!(Partitioning::equi_width_splits(0.0, 1.0, 1).is_empty());
    }

    #[test]
    fn equi_width_splits_guard_degenerate_inputs() {
        // Zero nodes: no division by zero, no splits.
        assert!(Partitioning::equi_width_splits(0.0, 100.0, 0).is_empty());
        // Inverted interval would produce descending splits.
        assert!(Partitioning::equi_width_splits(100.0, 0.0, 4).is_empty());
        // Non-finite bounds would produce NaN/infinite splits.
        assert!(Partitioning::equi_width_splits(f64::NAN, 100.0, 4).is_empty());
        assert!(Partitioning::equi_width_splits(0.0, f64::INFINITY, 4).is_empty());
        // A degenerate (but valid) single-point interval collapses every
        // split to the same value — routing still works via partition_point.
        let s = Partitioning::equi_width_splits(5.0, 5.0, 4);
        assert_eq!(s, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn empty_splits_route_consistently() {
        // With no valid splits, every record routes to node 0 and every
        // region prunes to node 0: degenerate but internally consistent.
        let p = Partitioning::Range {
            dim: 0,
            splits: Partitioning::equi_width_splits(f64::NAN, 100.0, 4),
        };
        let rec = Record::new(0, vec![42.0]);
        assert_eq!(p.node_for(&rec, 4), 0);
        let region = Rect::new(vec![40.0], vec![45.0]).unwrap();
        assert_eq!(p.nodes_for_region(&region, 4), vec![0]);
    }

    #[test]
    fn range_partition_roundtrip_with_pruning() {
        // Every record must land on a node the pruner would visit for a
        // region containing the record.
        let p = Partitioning::Range {
            dim: 0,
            splits: Partitioning::equi_width_splits(0.0, 100.0, 8),
        };
        for i in 0..100 {
            let v = i as f64;
            let rec = Record::new(i, vec![v]);
            let node = p.node_for(&rec, 8);
            let region = Rect::new(vec![v - 0.5], vec![v + 0.5]).unwrap();
            assert!(
                p.nodes_for_region(&region, 8).contains(&node),
                "value {v} on node {node} missed by pruner"
            );
        }
        // NaN in the partitioning dimension: routed to node 0 by the
        // explicit convention, deterministically.
        let nan_rec = Record::new(1000, vec![f64::NAN]);
        assert_eq!(p.node_for(&nan_rec, 8), 0);
        // Pruning never "misses" NaN records because no finite region can
        // contain them — the value fails every range predicate — so the
        // roundtrip invariant (record reachable on its routed node) holds
        // vacuously for every region a pruner could be asked about.
        for rect in [
            Rect::new(vec![-1e300], vec![1e300]).unwrap(),
            Rect::new(vec![0.0], vec![100.0]).unwrap(),
        ] {
            assert!(!sea_common::Region::Range(rect).contains_record(&nan_rec));
        }
    }
}
