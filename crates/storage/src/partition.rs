//! Table partitioning policies.

use serde::{Deserialize, Serialize};

use sea_common::{Record, Rect};

/// Identifier of a data node within a [`crate::StorageCluster`].
pub type NodeId = usize;

/// How a table's records are assigned to data nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Partitioning {
    /// Records are spread across all nodes by record-id hash. Every
    /// selection must engage every node (the common HDFS-style layout).
    Hash,
    /// Records are range-partitioned on attribute `dim` with the given
    /// split points: node `i` holds values in `[splits[i-1], splits[i])`
    /// (node 0 takes everything below `splits\[0\]`, the last node everything
    /// at or above the last split). Selections that constrain `dim` can
    /// prune nodes.
    Range {
        /// The partitioning attribute.
        dim: usize,
        /// Ascending split points; `splits.len() + 1` nodes are addressed.
        splits: Vec<f64>,
    },
}

impl Partitioning {
    /// Short policy name (`"hash"` / `"range"`) used in telemetry event
    /// payloads such as `storage.partition_pruned`.
    pub fn kind(&self) -> &'static str {
        match self {
            Partitioning::Hash => "hash",
            Partitioning::Range { .. } => "range",
        }
    }

    /// The node a record belongs to, given `n_nodes` nodes.
    pub fn node_for(&self, record: &Record, n_nodes: usize) -> NodeId {
        match self {
            Partitioning::Hash => {
                // Fibonacci hash of the record id: deterministic, well mixed.
                (record.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n_nodes
            }
            Partitioning::Range { dim, splits } => {
                let v = record.value(*dim);
                let idx = splits.partition_point(|s| *s <= v);
                idx.min(n_nodes - 1)
            }
        }
    }

    /// The set of nodes that may hold records inside `region` (its
    /// axis-aligned bounding rectangle), given `n_nodes` nodes. Hash
    /// partitioning cannot prune; range partitioning returns only nodes
    /// whose value interval overlaps the region's interval in the
    /// partitioning dimension.
    pub fn nodes_for_region(&self, region: &Rect, n_nodes: usize) -> Vec<NodeId> {
        match self {
            Partitioning::Hash => (0..n_nodes).collect(),
            Partitioning::Range { dim, splits } => {
                if *dim >= region.dims() {
                    return (0..n_nodes).collect();
                }
                let lo = region.lo()[*dim];
                let hi = region.hi()[*dim];
                let first = splits.partition_point(|s| *s <= lo).min(n_nodes - 1);
                let last = splits.partition_point(|s| *s <= hi).min(n_nodes - 1);
                (first..=last).collect()
            }
        }
    }

    /// Builds equi-width range splits over `[lo, hi]` for `n_nodes` nodes.
    pub fn equi_width_splits(lo: f64, hi: f64, n_nodes: usize) -> Vec<f64> {
        let width = (hi - lo) / n_nodes as f64;
        (1..n_nodes).map(|i| lo + width * i as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_spreads_records() {
        let p = Partitioning::Hash;
        let mut counts = vec![0usize; 4];
        for id in 0..4000u64 {
            let r = Record::new(id, vec![0.0]);
            counts[p.node_for(&r, 4)] += 1;
        }
        for c in &counts {
            assert!(*c > 800 && *c < 1200, "balanced-ish: {counts:?}");
        }
    }

    #[test]
    fn hash_cannot_prune() {
        let p = Partitioning::Hash;
        let region = Rect::new(vec![0.0], vec![0.1]).unwrap();
        assert_eq!(p.nodes_for_region(&region, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn range_assigns_by_split() {
        let p = Partitioning::Range {
            dim: 0,
            splits: vec![10.0, 20.0],
        };
        assert_eq!(p.node_for(&Record::new(0, vec![5.0]), 3), 0);
        assert_eq!(p.node_for(&Record::new(1, vec![10.0]), 3), 1);
        assert_eq!(p.node_for(&Record::new(2, vec![15.0]), 3), 1);
        assert_eq!(p.node_for(&Record::new(3, vec![25.0]), 3), 2);
    }

    #[test]
    fn range_prunes_nodes() {
        let p = Partitioning::Range {
            dim: 0,
            splits: vec![10.0, 20.0, 30.0],
        };
        let region = Rect::new(vec![12.0, 0.0], vec![18.0, 1.0]).unwrap();
        assert_eq!(p.nodes_for_region(&region, 4), vec![1]);
        let wide = Rect::new(vec![5.0, 0.0], vec![25.0, 1.0]).unwrap();
        assert_eq!(p.nodes_for_region(&wide, 4), vec![0, 1, 2]);
    }

    #[test]
    fn range_on_unconstrained_dim_touches_all() {
        let p = Partitioning::Range {
            dim: 5,
            splits: vec![10.0],
        };
        let region = Rect::new(vec![0.0], vec![1.0]).unwrap();
        assert_eq!(p.nodes_for_region(&region, 2), vec![0, 1]);
    }

    #[test]
    fn equi_width_splits_are_ascending() {
        let s = Partitioning::equi_width_splits(0.0, 100.0, 4);
        assert_eq!(s, vec![25.0, 50.0, 75.0]);
        assert!(Partitioning::equi_width_splits(0.0, 1.0, 1).is_empty());
    }

    #[test]
    fn range_partition_roundtrip_with_pruning() {
        // Every record must land on a node the pruner would visit for a
        // region containing the record.
        let p = Partitioning::Range {
            dim: 0,
            splits: Partitioning::equi_width_splits(0.0, 100.0, 8),
        };
        for i in 0..100 {
            let v = i as f64;
            let rec = Record::new(i, vec![v]);
            let node = p.node_for(&rec, 8);
            let region = Rect::new(vec![v - 0.5], vec![v + 0.5]).unwrap();
            assert!(
                p.nodes_for_region(&region, 8).contains(&node),
                "value {v} on node {node} missed by pruner"
            );
        }
    }
}
