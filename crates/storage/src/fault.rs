//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] describes *which* faults a cluster experiences — node
//! crashes after their Nth scan, transient per-scan errors that clear
//! after a recovery window, and slow nodes whose scans cost a latency
//! multiplier. Every decision is a pure function of `(plan seed, node,
//! per-node operation index)` — never wall clock, never a global RNG —
//! so two runs of the same workload against the same plan observe the
//! same faults in the same places, regardless of executor thread count
//! (each partition's scans happen in sequence on a single worker within
//! a query, so per-node op indices are schedule-independent).
//!
//! The runtime half, [`FaultState`], holds the per-node operation
//! counters and crash latches. It lives on the
//! [`StorageCluster`](crate::StorageCluster) behind an `Arc`, so clones
//! of a cluster share one fault timeline (mirroring how clones share no
//! other mutable state: faults are an experiment-harness concern, not
//! part of the persistent cluster image).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::partition::NodeId;

/// SplitMix64 finalizer: the workspace idiom for deterministic derived
/// randomness (cf. `trace_id_for_query` in sea-telemetry).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` derived from `(seed, node, op)`.
fn unit(seed: u64, node: NodeId, op: u64) -> f64 {
    let h = splitmix(seed ^ splitmix(node as u64).wrapping_add(splitmix(op)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded description of the faults to inject into a cluster.
///
/// Install with
/// [`StorageCluster::set_fault_plan`](crate::StorageCluster::set_fault_plan);
/// remove with
/// [`StorageCluster::clear_fault_plan`](crate::StorageCluster::clear_fault_plan).
/// With no plan installed the cluster behaves exactly as before this
/// module existed — the fault path is a no-op.
///
/// # Examples
///
/// ```
/// use sea_storage::FaultPlan;
///
/// let plan = FaultPlan::new(42)
///     .with_transient(0.05, 2) // 5% of scans start a 2-op outage
///     .with_crash(1, 10)       // node 1 dies after its 10th scan
///     .with_slow_node(2, 3.0); // node 2's scans cost 3x
/// assert_eq!(plan.seed, 42);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Probability that a given per-node scan operation *starts* a
    /// transient outage episode.
    pub transient_rate: f64,
    /// Length of a transient episode in operations: once an op starts an
    /// episode, that op and the next `transient_recovery − 1` ops on the
    /// same node also fail. Retries consume ops, so a caller retrying at
    /// least `transient_recovery` times rides out any single episode.
    pub transient_recovery: u32,
    /// `(node, op)` pairs: the node's primary crashes permanently once
    /// its per-node operation counter reaches `op` (until
    /// [`StorageCluster::restore_node`](crate::StorageCluster::restore_node)).
    pub crashes: Vec<(NodeId, u64)>,
    /// `(node, multiplier)` pairs: every scan served for that partition
    /// charges its simulated cost scaled by the multiplier.
    pub slow_nodes: Vec<(NodeId, f64)>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; compose with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            transient_recovery: 1,
            crashes: Vec::new(),
            slow_nodes: Vec::new(),
        }
    }

    /// Adds transient per-scan faults: each op starts an episode with
    /// probability `rate`; an episode makes `recovery` consecutive ops
    /// fail (minimum 1).
    #[must_use]
    pub fn with_transient(mut self, rate: f64, recovery: u32) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self.transient_recovery = recovery.max(1);
        self
    }

    /// Crashes `node`'s primary once its operation counter reaches `op`.
    #[must_use]
    pub fn with_crash(mut self, node: NodeId, op: u64) -> Self {
        self.crashes.push((node, op));
        self
    }

    /// Makes every scan of partition `node` cost `multiplier`× the
    /// normal simulated cost.
    #[must_use]
    pub fn with_slow_node(mut self, node: NodeId, multiplier: f64) -> Self {
        self.slow_nodes.push((node, multiplier.max(1.0)));
        self
    }

    /// Whether operation `op` on `node` hits a transient episode: true
    /// iff any of the `transient_recovery` most recent ops (including
    /// `op` itself) started an episode. Pure in `(seed, node, op)`.
    pub fn transient_hit(&self, node: NodeId, op: u64) -> bool {
        if self.transient_rate <= 0.0 {
            return false;
        }
        let window = u64::from(self.transient_recovery.max(1));
        (op.saturating_sub(window - 1)..=op).any(|j| unit(self.seed, node, j) < self.transient_rate)
    }

    /// The latency multiplier for `node` (1.0 when not listed).
    pub fn slow_multiplier(&self, node: NodeId) -> f64 {
        self.slow_nodes
            .iter()
            .find(|(n, _)| *n == node)
            .map_or(1.0, |(_, m)| *m)
    }

    fn crash_op(&self, node: NodeId) -> Option<u64> {
        self.crashes
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, op)| *op)
    }
}

/// What the fault layer decided about one scan attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FaultDecision {
    /// Serve the scan, charging cost scaled by the multiplier.
    Proceed(f64),
    /// Fail this attempt with [`SeaError::Transient`](sea_common::SeaError).
    Transient,
}

/// Runtime fault state: the installed plan plus per-node operation
/// counters and crash latches. Shared (`Arc`) across cluster clones.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    ops: Vec<AtomicU64>,
    crashed: Vec<AtomicBool>,
    crash_spent: Vec<AtomicBool>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, n_nodes: usize) -> Self {
        FaultState {
            plan,
            ops: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            crashed: (0..n_nodes).map(|_| AtomicBool::new(false)).collect(),
            crash_spent: (0..n_nodes).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Scans performed so far against partition `node`.
    pub fn ops(&self, node: NodeId) -> u64 {
        self.ops.get(node).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Whether the plan has crashed `node`'s primary.
    pub fn crashed(&self, node: NodeId) -> bool {
        self.crashed
            .get(node)
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Clears a crash latch (called by `restore_node`); the crash does
    /// not re-trigger.
    pub(crate) fn revive(&self, node: NodeId) {
        if let Some(c) = self.crashed.get(node) {
            c.store(false, Ordering::Relaxed);
        }
    }

    /// Registers one scan attempt against partition `node` and decides
    /// its fate. Crash latches flip *before* the serving-copy lookup, so
    /// the very operation that crashes a node already fails over.
    pub(crate) fn on_scan(&self, node: NodeId) -> FaultDecision {
        let Some(counter) = self.ops.get(node) else {
            return FaultDecision::Proceed(1.0);
        };
        let op = counter.fetch_add(1, Ordering::Relaxed);
        if let Some(at) = self.plan.crash_op(node) {
            if op >= at && !self.crash_spent[node].swap(true, Ordering::Relaxed) {
                self.crashed[node].store(true, Ordering::Relaxed);
            }
        }
        if self.plan.transient_hit(node, op) {
            return FaultDecision::Transient;
        }
        FaultDecision::Proceed(self.plan.slow_multiplier(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_in_seed_node_op() {
        let plan = FaultPlan::new(7).with_transient(0.3, 2);
        for node in 0..4 {
            for op in 0..200 {
                assert_eq!(
                    plan.transient_hit(node, op),
                    plan.transient_hit(node, op),
                    "node {node} op {op}"
                );
            }
        }
        // A different seed produces a different fault pattern.
        let other = FaultPlan::new(8).with_transient(0.3, 2);
        let a: Vec<bool> = (0..500).map(|op| plan.transient_hit(0, op)).collect();
        let b: Vec<bool> = (0..500).map(|op| other.transient_hit(0, op)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn episodes_last_the_recovery_window() {
        let plan = FaultPlan::new(11).with_transient(0.05, 3);
        // Find an op that starts an episode and check the window holds.
        let start = (0..10_000)
            .find(|&op| unit(plan.seed, 0, op) < plan.transient_rate)
            .expect("some op starts an episode at 5%");
        for j in start..start + 3 {
            assert!(plan.transient_hit(0, j), "op {j} inside the episode");
        }
    }

    #[test]
    fn zero_rate_never_faults() {
        let plan = FaultPlan::new(3);
        assert!((0..1000).all(|op| !plan.transient_hit(0, op)));
        assert_eq!(plan.slow_multiplier(0), 1.0);
    }

    #[test]
    fn crash_latch_fires_once_and_revives() {
        let state = FaultState::new(FaultPlan::new(1).with_crash(2, 3), 4);
        for _ in 0..3 {
            assert_eq!(state.on_scan(2), FaultDecision::Proceed(1.0));
            assert!(!state.crashed(2));
        }
        state.on_scan(2); // op 3: the crash trigger
        assert!(state.crashed(2));
        state.revive(2);
        assert!(!state.crashed(2));
        state.on_scan(2);
        assert!(!state.crashed(2), "a spent crash does not re-trigger");
    }

    #[test]
    fn slow_multiplier_applies_to_listed_nodes_only() {
        let plan = FaultPlan::new(0).with_slow_node(1, 4.0);
        assert_eq!(plan.slow_multiplier(1), 4.0);
        assert_eq!(plan.slow_multiplier(0), 1.0);
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::new(42)
            .with_transient(0.1, 2)
            .with_crash(0, 5)
            .with_slow_node(3, 2.5);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
