//! Property tests of the storage substrate: whatever the partitioning,
//! block size, or failure pattern, scans must return exactly the loaded
//! records.

use proptest::prelude::*;

use sea_common::{CostMeter, Record, Rect};
use sea_storage::{Partitioning, StorageCluster};

fn arb_records(max: usize) -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..max).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| Record::new(i as u64, vec![x, y]))
            .collect()
    })
}

fn arb_partitioning() -> impl Strategy<Value = Partitioning> {
    prop_oneof![
        Just(Partitioning::Hash),
        (1usize..6).prop_map(|n| Partitioning::Range {
            dim: 0,
            splits: Partitioning::equi_width_splits(0.0, 100.0, n + 1),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_scans_return_every_record_exactly_once(
        records in arb_records(150),
        partitioning in arb_partitioning(),
        nodes in 1usize..8,
        block in 1usize..64,
    ) {
        let mut c = StorageCluster::new(nodes, block);
        c.load_table("t", records.clone(), partitioning).unwrap();
        let mut ids = Vec::new();
        for n in 0..nodes {
            let mut m = CostMeter::new();
            ids.extend(c.scan_node("t", n, &mut m).unwrap().iter().map(|r| r.id));
        }
        ids.sort_unstable();
        let mut want: Vec<u64> = records.iter().map(|r| r.id).collect();
        want.sort_unstable();
        prop_assert_eq!(ids, want);
    }

    #[test]
    fn region_scans_equal_filtering(
        records in arb_records(150),
        partitioning in arb_partitioning(),
        lx in 0.0f64..80.0, ly in 0.0f64..80.0, w in 1.0f64..40.0, h in 1.0f64..40.0,
    ) {
        let region = Rect::new(vec![lx, ly], vec![lx + w, ly + h]).unwrap();
        let mut c = StorageCluster::new(4, 16);
        c.load_table("t", records.clone(), partitioning).unwrap();
        let mut got = Vec::new();
        for n in c.nodes_for_region("t", &region).unwrap() {
            let mut m = CostMeter::new();
            got.extend(
                c.scan_node_region("t", n, &region, &mut m)
                    .unwrap()
                    .iter()
                    .map(|r| r.id),
            );
        }
        got.sort_unstable();
        let mut want: Vec<u64> = records
            .iter()
            .filter(|r| region.contains(&r.to_point()))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn replication_masks_any_single_failure(
        records in arb_records(120),
        fail in 0usize..4,
    ) {
        let mut c = StorageCluster::with_replication(4, 16);
        c.load_table("t", records.clone(), Partitioning::Hash).unwrap();
        c.fail_node(fail).unwrap();
        let mut ids = Vec::new();
        for n in 0..4 {
            let mut m = CostMeter::new();
            ids.extend(c.scan_node("t", n, &mut m).unwrap().iter().map(|r| r.id));
        }
        ids.sort_unstable();
        let mut want: Vec<u64> = records.iter().map(|r| r.id).collect();
        want.sort_unstable();
        prop_assert_eq!(ids, want);
    }

    #[test]
    fn insert_then_delete_region_is_consistent(
        records in arb_records(100),
        lx in 0.0f64..80.0, w in 1.0f64..40.0,
    ) {
        let region = Rect::new(vec![lx, 0.0], vec![lx + w, 100.0]).unwrap();
        let mut c = StorageCluster::new(3, 16);
        c.load_table("t", records.clone(), Partitioning::Hash).unwrap();
        let removed = c.delete_region("t", &region).unwrap();
        let want_removed = records
            .iter()
            .filter(|r| region.contains(&r.to_point()))
            .count();
        prop_assert_eq!(removed, want_removed);
        prop_assert_eq!(
            c.stats("t").unwrap().records,
            records.len() - want_removed
        );
        // Nothing inside the region survives.
        for n in 0..3 {
            let mut m = CostMeter::new();
            let inside = c.scan_node_region("t", n, &region, &mut m).unwrap();
            prop_assert!(inside.is_empty());
        }
    }
}
