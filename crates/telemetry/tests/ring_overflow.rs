//! Sink-level event-ring overflow: the oldest events are evicted in
//! order and every eviction is surfaced through the
//! `telemetry.events_dropped` counter (and thus through metrics export).

use sea_telemetry::{export, TelemetrySink, EVENTS_DROPPED_COUNTER, MAX_EVENTS};

#[test]
fn overflow_evicts_oldest_and_bumps_the_dropped_counter() {
    let sink = TelemetrySink::recording();
    let extra = 7u64;
    for i in 0..(MAX_EVENTS as u64 + extra) {
        sink.event("e", &[("i", i.into())]);
    }
    let snap = sink.snapshot().unwrap();

    // Exactly the first `extra` events were evicted, oldest first: the
    // retained window starts at seq == extra and stays contiguous.
    assert_eq!(snap.events.events.len(), MAX_EVENTS);
    assert_eq!(snap.events.evicted, extra);
    assert_eq!(snap.events.events[0].seq, extra);
    for (offset, e) in snap.events.events.iter().enumerate() {
        assert_eq!(e.seq, extra + offset as u64, "ring stays in order");
    }

    // Every eviction is counted, and per-name totals still see all pushes.
    assert_eq!(snap.counter(EVENTS_DROPPED_COUNTER), extra);
    assert_eq!(snap.event_count("e"), MAX_EVENTS as u64 + extra);

    // The drop counter rides along into the Prometheus exposition, so
    // overflow is visible to scrapers, not just to snapshot readers.
    let prom = export::prometheus_text(&snap);
    assert!(
        prom.contains(&format!("telemetry_events_dropped {extra}")),
        "dropped counter exported:\n{prom}"
    );
}

#[test]
fn below_capacity_nothing_drops() {
    let sink = TelemetrySink::recording();
    for i in 0..64u64 {
        sink.event("e", &[("i", i.into())]);
    }
    let snap = sink.snapshot().unwrap();
    assert_eq!(snap.events.evicted, 0);
    assert_eq!(snap.counter(EVENTS_DROPPED_COUNTER), 0);
    assert_eq!(snap.events.events.len(), 64);
}
