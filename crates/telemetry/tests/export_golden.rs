//! Golden-file tests for the exporters: a fully synthetic snapshot
//! (every float hand-set, so nothing depends on wall clocks or machine
//! speed) must serialize byte-for-byte to the checked-in fixtures.
//!
//! The exporters are hand-written precisely so this is a meaningful
//! contract — any formatting drift (metric ordering, float rendering,
//! JSON layout) shows up as a fixture diff in review instead of
//! silently breaking downstream scrapers or Perfetto loads.
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p sea-telemetry --test export_golden`

use std::path::PathBuf;

use sea_telemetry::export::{chrome_trace_json, prometheus_text};
use sea_telemetry::{
    BucketSnapshot, CounterSnapshot, EventLogSnapshot, EventSnapshot, FieldValue, GaugeSnapshot,
    HistogramSnapshot, SpanForestSnapshot, SpanNode, TelemetrySnapshot,
};

/// A deterministic snapshot exercising every exporter feature: counters,
/// gauges, a histogram with partially-filled buckets, a two-trace span
/// forest with nesting, tags of several field types, and nonzero
/// bookkeeping (dropped roots / evicted events / open spans).
fn synthetic_snapshot() -> TelemetrySnapshot {
    let scan = SpanNode {
        name: "storage.node.scan".to_string(),
        trace_id: 0x9e3779b97f4a7c15,
        span_id: 2,
        parent_span_id: 1,
        wall_us: 80.5,
        sim_us: 1200.0,
        tags: vec![
            ("node".to_string(), FieldValue::U64(3)),
            ("blocks".to_string(), FieldValue::U64(12)),
        ],
        children: vec![],
    };
    let gather = SpanNode {
        name: "query.executor.gather".to_string(),
        trace_id: 0x9e3779b97f4a7c15,
        span_id: 3,
        parent_span_id: 1,
        wall_us: 10.25,
        sim_us: 64.0,
        tags: vec![("partial_results".to_string(), FieldValue::U64(4))],
        children: vec![],
    };
    let root = SpanNode {
        name: "bench.query".to_string(),
        trace_id: 0x9e3779b97f4a7c15,
        span_id: 1,
        parent_span_id: 0,
        wall_us: 100.0,
        sim_us: 5.0,
        tags: vec![
            ("branch".to_string(), FieldValue::Str("exact".to_string())),
            ("cached".to_string(), FieldValue::Bool(false)),
        ],
        children: vec![scan, gather],
    };
    let second_trace = SpanNode {
        name: "geo.polystore.exchange_results".to_string(),
        trace_id: 0xdeadbeef,
        span_id: 4,
        parent_span_id: 0,
        wall_us: 42.0,
        sim_us: 300.125,
        tags: vec![("delta".to_string(), FieldValue::I64(-7))],
        children: vec![],
    };
    TelemetrySnapshot {
        counters: vec![
            // A leading digit plus unicode: exercises the `_`-prefix and
            // char-replacement rules of the exposition sanitizer.
            CounterSnapshot {
                name: "2fast·cache-hits".to_string(),
                value: 9,
            },
            CounterSnapshot {
                name: "query.retries".to_string(),
                value: 4,
            },
            CounterSnapshot {
                name: "storage.node.blocks_read".to_string(),
                value: 12,
            },
            CounterSnapshot {
                name: "telemetry.events_dropped".to_string(),
                value: 2,
            },
        ],
        gauges: vec![GaugeSnapshot {
            name: "agent.error".to_string(),
            value: 0.25,
        }],
        histograms: vec![HistogramSnapshot {
            name: "bench.query_sim_us".to_string(),
            count: 3,
            sum: 1650.0,
            min: 45.0,
            max: 1300.0,
            mean: 550.0,
            p50: 305.0,
            p95: 1300.0,
            p99: 1300.0,
            p999: 1300.0,
            buckets: vec![
                BucketSnapshot {
                    le: 100.0,
                    count: 1,
                },
                BucketSnapshot {
                    le: 1000.0,
                    count: 1,
                },
                BucketSnapshot {
                    le: f64::MAX,
                    count: 1,
                },
            ],
        }],
        spans: SpanForestSnapshot {
            roots: vec![root, second_trace],
            open_spans: 1,
            dropped_roots: 5,
        },
        events: EventLogSnapshot {
            events: vec![EventSnapshot {
                seq: 2,
                query: Some(7),
                trace_id: 0x9e3779b97f4a7c15,
                span_id: 1,
                name: "agent.predicted".to_string(),
                fields: vec![("est_error".to_string(), FieldValue::F64(0.015))],
            }],
            evicted: 2,
            totals_by_name: vec![("agent.predicted".to_string(), 3)],
        },
    }
}

fn check_against_fixture(rendered: &str, fixture: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "fixtures", fixture]
        .iter()
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_GOLDEN=1",
            fixture
        )
    });
    assert_eq!(
        rendered, expected,
        "{fixture} drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn prometheus_exposition_matches_golden_fixture() {
    check_against_fixture(&prometheus_text(&synthetic_snapshot()), "golden.prom");
}

#[test]
fn chrome_trace_matches_golden_fixture() {
    check_against_fixture(
        &chrome_trace_json(&synthetic_snapshot()),
        "golden_trace.json",
    );
}
