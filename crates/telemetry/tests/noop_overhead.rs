//! The disabled sink's contract: every call is a single enum-tag check
//! and performs **zero heap allocations**, so leaving instrumentation in
//! hot paths costs nothing when telemetry is off.
//!
//! Verified with a counting global allocator: the delta across a tight
//! loop of sink calls must be exactly zero. (String-bearing callers are
//! expected to gate `FieldValue::Str` construction behind
//! `is_enabled()`; this test exercises the non-allocating field types.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use sea_telemetry::{TelemetrySink, TraceContext};

#[test]
fn noop_sink_allocates_nothing() {
    let sink = TelemetrySink::noop();
    let parent = TraceContext::NONE;

    // Warm up any lazily-initialized test-harness state outside the
    // measured window.
    sink.incr("warmup", 1);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        sink.incr("storage.node.blocks_read", i);
        sink.observe("bench.query_sim_us", i as f64);
        sink.gauge_set("agent.quanta", i as f64);
        sink.begin_query(i);
        let span = sink.span_child_of(&parent, "query.executor.node");
        span.record_sim_us(1.0);
        span.tag("node", i);
        sink.event("agent.predicted", &[("est_error", 0.01.into())]);
        let counter = sink.counter("geo.wan_bytes");
        counter.add(i);
        drop(span);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "noop telemetry path must not allocate (got {} allocations)",
        after - before
    );
}
