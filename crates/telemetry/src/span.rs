//! Nested timing spans with wall-clock and simulated-cost attribution.
//!
//! [`SpanGuard`]s form a per-recorder stack: a span opened while another
//! guard is live becomes its child, so instrumented layers compose into
//! a tree (`bench.query` → `core.pipeline.process` →
//! `query.executor.scan` → `storage.node.scan`) without any explicit
//! plumbing between them. Completed root trees are kept up to a bound;
//! beyond it only a drop counter grows, keeping memory flat over long
//! runs.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::Recorder;

/// Maximum completed root spans retained in a snapshot.
const MAX_ROOT_SPANS: usize = 128;

#[derive(Debug)]
struct OpenSpan {
    name: String,
    started: Instant,
    sim_us: f64,
    children: Vec<SpanNode>,
}

#[derive(Debug, Default)]
struct SpanState {
    open: Vec<OpenSpan>,
    roots: Vec<SpanNode>,
    dropped_roots: u64,
}

/// Span backend owned by a [`Recorder`].
#[derive(Debug, Default)]
pub(crate) struct SpanRecorder {
    state: Mutex<SpanState>,
}

impl SpanRecorder {
    pub(crate) fn enter(&self, recorder: Arc<Recorder>, name: &str) -> SpanGuard {
        let mut state = self.state.lock();
        state.open.push(OpenSpan {
            name: name.to_string(),
            started: Instant::now(),
            sim_us: 0.0,
            children: Vec::new(),
        });
        SpanGuard {
            recorder: Some(recorder),
            depth: state.open.len(),
        }
    }

    fn add_sim_us(&self, depth: usize, us: f64) {
        let mut state = self.state.lock();
        if let Some(span) = state.open.get_mut(depth - 1) {
            span.sim_us += us;
        }
    }

    /// Closes the span opened at `depth`, folding any still-open
    /// descendants (guards leaked or dropped out of order) into it.
    fn exit(&self, depth: usize) {
        let mut state = self.state.lock();
        while state.open.len() >= depth {
            let open = state.open.pop().expect("span stack underflow");
            let node = SpanNode {
                name: open.name,
                wall_us: open.started.elapsed().as_secs_f64() * 1e6,
                sim_us: open.sim_us,
                children: open.children,
            };
            match state.open.last_mut() {
                Some(parent) => parent.children.push(node),
                None => {
                    if state.roots.len() < MAX_ROOT_SPANS {
                        state.roots.push(node);
                    } else {
                        state.dropped_roots += 1;
                    }
                }
            }
        }
    }

    pub(crate) fn snapshot(&self) -> SpanForestSnapshot {
        let state = self.state.lock();
        SpanForestSnapshot {
            roots: state.roots.clone(),
            open_spans: state.open.len() as u64,
            dropped_roots: state.dropped_roots,
        }
    }
}

/// RAII guard for one span; records on drop. Obtained from
/// [`crate::TelemetrySink::span`].
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Option<Arc<Recorder>>,
    depth: usize,
}

impl SpanGuard {
    pub(crate) fn noop() -> Self {
        Self {
            recorder: None,
            depth: 0,
        }
    }

    /// Attributes simulated cost (microseconds of modelled latency) to
    /// this span.
    pub fn record_sim_us(&self, us: f64) {
        if let Some(r) = &self.recorder {
            r.spans.add_sim_us(self.depth, us);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(r) = self.recorder.take() {
            r.spans.exit(self.depth);
        }
    }
}

/// One completed span: a node in the per-query timing tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    pub name: String,
    /// Measured wall-clock duration of the span.
    pub wall_us: f64,
    /// Simulated cost attributed via [`SpanGuard::record_sim_us`]
    /// (excludes children's attributions).
    pub sim_us: f64,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// This span's simulated cost including all descendants.
    pub fn sim_us_total(&self) -> f64 {
        self.sim_us
            + self
                .children
                .iter()
                .map(SpanNode::sim_us_total)
                .sum::<f64>()
    }
}

/// All completed root span trees plus bookkeeping about what was
/// dropped or still open at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanForestSnapshot {
    pub roots: Vec<SpanNode>,
    /// Spans still open when the snapshot was taken (not included in
    /// `roots`).
    pub open_spans: u64,
    /// Completed root trees discarded after the retention bound filled.
    pub dropped_roots: u64,
}

#[cfg(test)]
mod tests {
    use crate::TelemetrySink;

    #[test]
    fn sibling_spans_attach_to_the_same_parent() {
        let sink = TelemetrySink::recording();
        {
            let _root = sink.span("root");
            {
                let _a = sink.span("a");
            }
            {
                let _b = sink.span("b");
            }
        }
        let snap = sink.snapshot().unwrap();
        let root = &snap.spans.roots[0];
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn sim_total_rolls_up_descendants() {
        let sink = TelemetrySink::recording();
        {
            let root = sink.span("root");
            root.record_sim_us(1.0);
            let child = sink.span("child");
            child.record_sim_us(2.0);
        }
        let snap = sink.snapshot().unwrap();
        let root = &snap.spans.roots[0];
        assert_eq!(root.sim_us, 1.0);
        assert_eq!(root.sim_us_total(), 3.0);
    }

    #[test]
    fn root_retention_is_bounded() {
        let sink = TelemetrySink::recording();
        for _ in 0..(super::MAX_ROOT_SPANS + 10) {
            let _s = sink.span("q");
        }
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.spans.roots.len(), super::MAX_ROOT_SPANS);
        assert_eq!(snap.spans.dropped_roots, 10);
    }

    #[test]
    fn out_of_order_drop_folds_children() {
        let sink = TelemetrySink::recording();
        let outer = sink.span("outer");
        let inner = sink.span("inner");
        drop(outer); // inner is folded into outer rather than leaking
        drop(inner); // stale guard: stack already unwound, must not panic
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.spans.roots.len(), 1);
        assert_eq!(snap.spans.roots[0].children[0].name, "inner");
        assert_eq!(snap.spans.open_spans, 0);
    }
}
