//! Nested timing spans with wall-clock and simulated-cost attribution
//! plus deterministic distributed-trace identity.
//!
//! [`SpanGuard`]s form a per-recorder, **per-thread** stack: a span
//! opened while another guard is live on the same thread becomes its
//! child, so instrumented layers compose into a tree (`bench.query` →
//! `core.pipeline.process` → `query.executor.scan` →
//! `storage.node.scan`) without any explicit plumbing between them.
//! Where work crosses a simulated node boundary (executor → storage
//! node, coordinator → constituent system) — or a real thread boundary
//! (the executor's scatter workers, a batched query on a pool thread) —
//! the callee opens its span with an explicit [`TraceContext`] parent
//! via [`crate::TelemetrySink::span_child_of`], so the tree stays
//! coherent even when no ambient stack could attribute it: a span
//! finished off-thread attaches to its declared parent wherever that
//! parent's thread is, never to an unrelated span that happens to be
//! open elsewhere. Every completed span carries `trace_id` / `span_id`
//! / `parent_span_id` (deterministic; no wall clock or RNG) and
//! free-form tags for per-hop attribution (which storage node, which
//! branch the agent took). Completed root trees are kept up to a bound;
//! beyond it only a drop counter grows, keeping memory flat over long
//! runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::event::FieldValue;
use crate::trace::{trace_id_for_query, TraceContext};
use crate::Recorder;

/// Maximum completed root spans retained in a snapshot.
const MAX_ROOT_SPANS: usize = 128;

/// Salt mixed into synthesized trace ids for spans opened outside any
/// query (keeps them disjoint from real query trace ids).
const ORPHAN_TRACE_SALT: u64 = 0x5ea0_7e1e_0000_0000;

#[derive(Debug)]
struct OpenSpan {
    name: String,
    started: Instant,
    sim_us: f64,
    trace_id: u64,
    span_id: u64,
    parent_span_id: u64,
    tags: Vec<(String, FieldValue)>,
    children: Vec<SpanNode>,
}

/// The ambient open-span stack of one OS thread. Stacks are keyed by a
/// process-unique thread id (not reused, unlike OS thread ids), created
/// on a thread's first span and removed once its stack drains, so
/// short-lived pool threads never accumulate state.
#[derive(Debug)]
struct ThreadStack {
    tid: u64,
    open: Vec<OpenSpan>,
}

#[derive(Debug, Default)]
struct SpanState {
    stacks: Vec<ThreadStack>,
    roots: Vec<SpanNode>,
    dropped_roots: u64,
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn current_thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Span backend owned by a [`Recorder`].
#[derive(Debug)]
pub(crate) struct SpanRecorder {
    state: Mutex<SpanState>,
    next_span_id: AtomicU64,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        Self {
            state: Mutex::default(),
            next_span_id: AtomicU64::new(1),
        }
    }
}

impl SpanRecorder {
    /// Opens a span. `parent` wins when active; otherwise the span nests
    /// under the top of the calling thread's ambient stack; otherwise it
    /// becomes a root whose trace id derives from `query` (or a salted
    /// span id when no query is active).
    pub(crate) fn enter(
        &self,
        recorder: Arc<Recorder>,
        name: &str,
        parent: TraceContext,
        query: Option<u64>,
    ) -> SpanGuard {
        let span_id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let tid = current_thread_id();
        let mut state = self.state.lock();
        let k = match state.stacks.iter().position(|st| st.tid == tid) {
            Some(k) => k,
            None => {
                state.stacks.push(ThreadStack {
                    tid,
                    open: Vec::new(),
                });
                state.stacks.len() - 1
            }
        };
        let (trace_id, parent_span_id) = if parent.is_active() {
            (parent.trace_id, parent.span_id)
        } else {
            match state.stacks[k].open.last() {
                Some(top) => (top.trace_id, top.span_id),
                None => match query {
                    Some(q) => (trace_id_for_query(q), 0),
                    None => (trace_id_for_query(ORPHAN_TRACE_SALT ^ span_id), 0),
                },
            }
        };
        state.stacks[k].open.push(OpenSpan {
            name: name.to_string(),
            started: Instant::now(),
            sim_us: 0.0,
            trace_id,
            span_id,
            parent_span_id,
            tags: Vec::new(),
            children: Vec::new(),
        });
        SpanGuard {
            recorder: Some(recorder),
            ctx: TraceContext { trace_id, span_id },
        }
    }

    fn find_open_mut(state: &mut SpanState, span_id: u64) -> Option<&mut OpenSpan> {
        state
            .stacks
            .iter_mut()
            .flat_map(|st| st.open.iter_mut().rev())
            .find(|s| s.span_id == span_id)
    }

    fn add_sim_us(&self, span_id: u64, us: f64) {
        let mut state = self.state.lock();
        if let Some(span) = Self::find_open_mut(&mut state, span_id) {
            span.sim_us += us;
        }
    }

    fn add_tag(&self, span_id: u64, key: &str, value: FieldValue) {
        let mut state = self.state.lock();
        if let Some(span) = Self::find_open_mut(&mut state, span_id) {
            span.tags.push((key.to_string(), value));
        }
    }

    /// The context of the calling thread's innermost open span, for
    /// stamping events. Spans open on other threads never leak into
    /// this thread's events.
    pub(crate) fn current_ctx(&self) -> TraceContext {
        let tid = current_thread_id();
        let state = self.state.lock();
        state
            .stacks
            .iter()
            .find(|st| st.tid == tid)
            .and_then(|st| st.open.last())
            .map_or(TraceContext::NONE, |top| TraceContext {
                trace_id: top.trace_id,
                span_id: top.span_id,
            })
    }

    /// Closes the span with id `span_id`, folding any still-open
    /// descendants above it in its own thread's stack (guards leaked or
    /// dropped out of order) into their parents first. A stale guard
    /// (id already gone) is a no-op. Completed nodes attach to their
    /// declared parent if it is still open — on any thread, so spans
    /// finished off-thread land under the right parent — else to the
    /// owning thread's nearest enclosing span, else the root forest.
    fn exit(&self, span_id: u64) {
        let mut state = self.state.lock();
        let Some(k) = state
            .stacks
            .iter()
            .position(|st| st.open.iter().any(|s| s.span_id == span_id))
        else {
            return;
        };
        loop {
            let open = state.stacks[k]
                .open
                .pop()
                .expect("span present by check above");
            let done = open.span_id == span_id;
            let node = SpanNode {
                name: open.name,
                trace_id: open.trace_id,
                span_id: open.span_id,
                parent_span_id: open.parent_span_id,
                wall_us: open.started.elapsed().as_secs_f64() * 1e6,
                sim_us: open.sim_us,
                tags: open.tags,
                children: open.children,
            };
            let declared = state.stacks.iter().enumerate().find_map(|(j, st)| {
                st.open
                    .iter()
                    .rposition(|s| s.span_id == node.parent_span_id)
                    .map(|i| (j, i))
            });
            match declared {
                Some((j, i)) => state.stacks[j].open[i].children.push(node),
                None => match state.stacks[k].open.last_mut() {
                    Some(top) => top.children.push(node),
                    None => {
                        if state.roots.len() < MAX_ROOT_SPANS {
                            state.roots.push(node);
                        } else {
                            state.dropped_roots += 1;
                        }
                    }
                },
            }
            if done {
                break;
            }
        }
        if state.stacks[k].open.is_empty() {
            state.stacks.remove(k);
        }
    }

    pub(crate) fn snapshot(&self) -> SpanForestSnapshot {
        let state = self.state.lock();
        SpanForestSnapshot {
            roots: state.roots.clone(),
            open_spans: state.stacks.iter().map(|st| st.open.len() as u64).sum(),
            dropped_roots: state.dropped_roots,
        }
    }
}

/// RAII guard for one span; records on drop. Obtained from
/// [`crate::TelemetrySink::span`] or
/// [`crate::TelemetrySink::span_child_of`].
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Option<Arc<Recorder>>,
    ctx: TraceContext,
}

impl SpanGuard {
    pub(crate) fn noop() -> Self {
        Self {
            recorder: None,
            ctx: TraceContext::NONE,
        }
    }

    /// This span's identity, for handing to child work on other
    /// simulated nodes ([`crate::TelemetrySink::span_child_of`]).
    /// Inactive (all zeros) for a noop guard.
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }

    /// Attributes simulated cost (microseconds of modelled latency) to
    /// this span.
    pub fn record_sim_us(&self, us: f64) {
        if let Some(r) = &self.recorder {
            r.spans.add_sim_us(self.ctx.span_id, us);
        }
    }

    /// Attaches a key/value tag (node id, branch taken, …) to this
    /// span.
    pub fn tag(&self, key: &str, value: impl Into<FieldValue>) {
        if let Some(r) = &self.recorder {
            r.spans.add_tag(self.ctx.span_id, key, value.into());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(r) = self.recorder.take() {
            r.spans.exit(self.ctx.span_id);
        }
    }
}

/// One completed span: a node in the per-query timing tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    pub name: String,
    /// Trace this span belongs to (deterministic per query).
    pub trace_id: u64,
    /// Unique id within the recorder.
    pub span_id: u64,
    /// Id of the parent span (0 = root of its trace).
    pub parent_span_id: u64,
    /// Measured wall-clock duration of the span.
    pub wall_us: f64,
    /// Simulated cost attributed via [`SpanGuard::record_sim_us`]
    /// (excludes children's attributions).
    pub sim_us: f64,
    /// Free-form attribution tags (`node`, `branch`, …).
    pub tags: Vec<(String, FieldValue)>,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// This span's simulated cost including all descendants.
    pub fn sim_us_total(&self) -> f64 {
        self.sim_us
            + self
                .children
                .iter()
                .map(SpanNode::sim_us_total)
                .sum::<f64>()
    }

    /// Tag value by key, if present.
    pub fn tag(&self, key: &str) -> Option<&FieldValue> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Depth-first search for the first descendant (or self) with this
    /// name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// All completed root span trees plus bookkeeping about what was
/// dropped or still open at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanForestSnapshot {
    pub roots: Vec<SpanNode>,
    /// Spans still open when the snapshot was taken (not included in
    /// `roots`).
    pub open_spans: u64,
    /// Completed root trees discarded after the retention bound filled.
    pub dropped_roots: u64,
}

#[cfg(test)]
mod tests {
    use crate::trace::trace_id_for_query;
    use crate::TelemetrySink;

    #[test]
    fn sibling_spans_attach_to_the_same_parent() {
        let sink = TelemetrySink::recording();
        {
            let _root = sink.span("root");
            {
                let _a = sink.span("a");
            }
            {
                let _b = sink.span("b");
            }
        }
        let snap = sink.snapshot().unwrap();
        let root = &snap.spans.roots[0];
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn sim_total_rolls_up_descendants() {
        let sink = TelemetrySink::recording();
        {
            let root = sink.span("root");
            root.record_sim_us(1.0);
            let child = sink.span("child");
            child.record_sim_us(2.0);
        }
        let snap = sink.snapshot().unwrap();
        let root = &snap.spans.roots[0];
        assert_eq!(root.sim_us, 1.0);
        assert_eq!(root.sim_us_total(), 3.0);
    }

    #[test]
    fn root_retention_is_bounded() {
        let sink = TelemetrySink::recording();
        for _ in 0..(super::MAX_ROOT_SPANS + 10) {
            let _s = sink.span("q");
        }
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.spans.roots.len(), super::MAX_ROOT_SPANS);
        assert_eq!(snap.spans.dropped_roots, 10);
    }

    #[test]
    fn out_of_order_drop_folds_children() {
        let sink = TelemetrySink::recording();
        let outer = sink.span("outer");
        let inner = sink.span("inner");
        drop(outer); // inner is folded into outer rather than leaking
        drop(inner); // stale guard: stack already unwound, must not panic
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.spans.roots.len(), 1);
        assert_eq!(snap.spans.roots[0].children[0].name, "inner");
        assert_eq!(snap.spans.open_spans, 0);
    }

    #[test]
    fn trace_ids_derive_from_the_active_query() {
        let sink = TelemetrySink::recording();
        sink.begin_query(42);
        {
            let root = sink.span("bench.query");
            let child = sink.span("child");
            assert_eq!(root.ctx().trace_id, trace_id_for_query(42));
            assert_eq!(child.ctx().trace_id, root.ctx().trace_id);
            assert_ne!(child.ctx().span_id, root.ctx().span_id);
        }
        let snap = sink.snapshot().unwrap();
        let root = &snap.spans.roots[0];
        assert_eq!(root.trace_id, trace_id_for_query(42));
        assert_eq!(root.parent_span_id, 0);
        assert_eq!(root.children[0].parent_span_id, root.span_id);
        assert_eq!(root.children[0].trace_id, root.trace_id);
    }

    #[test]
    fn explicit_child_of_overrides_the_ambient_stack() {
        let sink = TelemetrySink::recording();
        {
            let parent = sink.span("scatter");
            let parent_ctx = parent.ctx();
            {
                // An intervening span is live, but the child declares
                // scatter as its parent — like a cross-node RPC would.
                let _other = sink.span("unrelated");
                let child = sink.span_child_of(&parent_ctx, "node.work");
                assert_eq!(child.ctx().trace_id, parent_ctx.trace_id);
            }
        }
        let snap = sink.snapshot().unwrap();
        let parent = &snap.spans.roots[0];
        assert_eq!(parent.name, "scatter");
        let node = parent.find("node.work").expect("child under scatter");
        assert_eq!(node.parent_span_id, parent.span_id);
        // "unrelated" must not have adopted node.work.
        let unrelated = parent.find("unrelated").unwrap();
        assert!(unrelated.children.is_empty());
    }

    #[test]
    fn tags_survive_into_the_snapshot() {
        let sink = TelemetrySink::recording();
        {
            let s = sink.span("storage.node.scan");
            s.tag("node", 3u64);
            s.tag("branch", "exact");
        }
        let snap = sink.snapshot().unwrap();
        let node = &snap.spans.roots[0];
        assert_eq!(node.tag("node"), Some(&crate::FieldValue::U64(3)));
        assert_eq!(
            node.tag("branch"),
            Some(&crate::FieldValue::Str("exact".into()))
        );
    }

    #[test]
    fn spans_finished_off_thread_land_under_their_declared_parent() {
        let sink = TelemetrySink::recording();
        {
            let scatter = sink.span("scatter");
            let scatter_ctx = scatter.ctx();
            std::thread::scope(|s| {
                for node in 0..3u64 {
                    let sink = &sink;
                    s.spawn(move || {
                        let w = sink.span_child_of(&scatter_ctx, "node.work");
                        w.tag("node", node);
                    });
                }
            });
            // A worker's span must not have adopted the coordinator's
            // ambient stack, nor polluted this thread's event context.
            sink.event("coordinator.checkpoint", &[]);
            let snap = sink.snapshot().unwrap();
            let ev = snap
                .events
                .events
                .iter()
                .find(|e| e.name == "coordinator.checkpoint")
                .unwrap();
            assert_eq!(ev.span_id, scatter_ctx.span_id);
        }
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.spans.roots.len(), 1);
        let scatter = &snap.spans.roots[0];
        assert_eq!(scatter.name, "scatter");
        assert_eq!(scatter.children.len(), 3);
        for child in &scatter.children {
            assert_eq!(child.name, "node.work");
            assert_eq!(child.parent_span_id, scatter.span_id);
            assert_eq!(child.trace_id, scatter.trace_id);
        }
        assert_eq!(snap.spans.open_spans, 0);
    }

    #[test]
    fn concurrent_roots_on_separate_threads_stay_disjoint_trees() {
        let sink = TelemetrySink::recording();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sink = &sink;
                s.spawn(move || {
                    let root = sink.span("worker.root");
                    let _child = sink.span("worker.child");
                    root.record_sim_us(1.0);
                });
            }
        });
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.spans.roots.len(), 4);
        for root in &snap.spans.roots {
            assert_eq!(root.name, "worker.root");
            assert_eq!(root.children.len(), 1, "each tree keeps its own child");
            assert_eq!(root.children[0].name, "worker.child");
            assert_eq!(root.children[0].trace_id, root.trace_id);
        }
        assert_eq!(snap.spans.open_spans, 0);
    }

    #[test]
    fn orphan_spans_get_distinct_nonzero_trace_ids() {
        let sink = TelemetrySink::recording();
        let a_id;
        let b_id;
        {
            let a = sink.span("a");
            a_id = a.ctx().trace_id;
        }
        {
            let b = sink.span("b");
            b_id = b.ctx().trace_id;
        }
        assert_ne!(a_id, 0);
        assert_ne!(b_id, 0);
        assert_ne!(a_id, b_id);
    }
}
