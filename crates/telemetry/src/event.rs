//! Bounded per-query event log: a ring buffer of structured decision
//! events (`agent.predicted`, `storage.partition_pruned`, …).
//!
//! The ring keeps the most recent events; per-name totals are kept
//! separately so "did the agent ever fall back?" stays answerable after
//! eviction.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::trace::TraceContext;

/// Maximum events retained in the ring buffer.
/// Ring capacity: pushing beyond this many retained events evicts the
/// oldest (per-name totals and the sink's dropped-events counter keep
/// the full story).
pub const MAX_EVENTS: usize = 4096;

/// A structured payload value attached to an event field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

#[derive(Debug, Default)]
struct EventState {
    ring: VecDeque<EventSnapshot>,
    seq: u64,
    evicted: u64,
    totals_by_name: HashMap<String, u64>,
}

/// Event backend owned by a [`crate::Recorder`].
#[derive(Debug, Default)]
pub(crate) struct EventLog {
    state: Mutex<EventState>,
}

impl EventLog {
    /// Appends an event; returns `true` when an older event was evicted
    /// to make room (the sink surfaces that as the
    /// `telemetry.events_dropped` counter).
    pub(crate) fn push(
        &self,
        name: &str,
        query: Option<u64>,
        ctx: TraceContext,
        fields: &[(&str, FieldValue)],
    ) -> bool {
        let mut state = self.state.lock();
        let seq = state.seq;
        state.seq += 1;
        *state.totals_by_name.entry(name.to_string()).or_default() += 1;
        let evicting = state.ring.len() == MAX_EVENTS;
        if evicting {
            state.ring.pop_front();
            state.evicted += 1;
        }
        state.ring.push_back(EventSnapshot {
            seq,
            query,
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
        evicting
    }

    pub(crate) fn snapshot(&self) -> EventLogSnapshot {
        let state = self.state.lock();
        let mut totals: Vec<(String, u64)> = state
            .totals_by_name
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        totals.sort_by(|a, b| a.0.cmp(&b.0));
        EventLogSnapshot {
            events: state.ring.iter().cloned().collect(),
            evicted: state.evicted,
            totals_by_name: totals,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSnapshot {
    /// Monotonic sequence number (survives ring eviction).
    pub seq: u64,
    /// Query id active when the event fired, if any.
    pub query: Option<u64>,
    /// Trace of the innermost open span when the event fired (0 = none).
    pub trace_id: u64,
    /// Span the event fired inside (0 = none).
    pub span_id: u64,
    pub name: String,
    pub fields: Vec<(String, FieldValue)>,
}

/// The retained tail of the event stream plus per-name totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventLogSnapshot {
    pub events: Vec<EventSnapshot>,
    /// Events dropped from the front of the ring.
    pub evicted: u64,
    /// Lifetime event counts per name, sorted by name.
    pub totals_by_name: Vec<(String, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_but_totals_survive() {
        let log = EventLog::default();
        let mut evictions = 0u64;
        for _ in 0..(MAX_EVENTS + 5) {
            if log.push("e", None, TraceContext::NONE, &[]) {
                evictions += 1;
            }
        }
        let snap = log.snapshot();
        assert_eq!(snap.events.len(), MAX_EVENTS);
        assert_eq!(snap.evicted, 5);
        assert_eq!(evictions, 5);
        assert_eq!(snap.totals_by_name[0].1, (MAX_EVENTS + 5) as u64);
        assert_eq!(snap.events[0].seq, 5);
    }

    #[test]
    fn fields_preserve_order_and_types() {
        let log = EventLog::default();
        log.push(
            "agent.predicted",
            Some(3),
            TraceContext::NONE,
            &[
                ("est_error", 0.01.into()),
                ("quantum", 2u64.into()),
                ("reason", "below_threshold".into()),
            ],
        );
        let snap = log.snapshot();
        let e = &snap.events[0];
        assert_eq!(e.query, Some(3));
        assert_eq!(e.fields[0].1, FieldValue::F64(0.01));
        assert_eq!(e.fields[1].1, FieldValue::U64(2));
        assert_eq!(e.fields[2].1, FieldValue::Str("below_threshold".into()));
    }
}
