//! Exporters: Prometheus text exposition for the metrics registry and
//! Chrome `trace_event` JSON for span trees.
//!
//! Both serializers are hand-written rather than going through
//! `serde_json` so the output is byte-stable — metric order is the
//! registry's sorted order, float formatting is Rust's shortest
//! round-trip `Display`, and no map iteration order leaks in. That is
//! what makes golden-file tests (and diffing two exports) meaningful.
//!
//! The Chrome trace loads in `about:tracing` or [Perfetto]. Spans only
//! record durations (not absolute start times), so timestamps are
//! synthesized: each trace gets its own thread row, root trees are laid
//! end-to-end on that row, and children start at their parent's start,
//! packed sequentially — which preserves every containment and duration
//! relation the recorder knew. Two process groups are emitted: `pid 1`
//! shows measured wall-clock durations, `pid 2` the simulated-cost
//! model's durations (`sim_us_total`), so the two attributions can be
//! compared side by side for the same tree.
//!
//! [Perfetto]: https://ui.perfetto.dev

use crate::event::FieldValue;
use crate::span::SpanNode;
use crate::TelemetrySnapshot;

/// Process id used for the measured wall-clock timeline.
pub const WALL_PID: u64 = 1;
/// Process id used for the simulated-cost timeline.
pub const SIM_PID: u64 = 2;

/// Renders the snapshot's metrics registry (plus span/event-ring
/// bookkeeping) in the Prometheus text exposition format, version
/// 0.0.4. Metric names are passed through [`sanitize`] (so internal
/// dotted names like `query.retries` surface as `query_retries`), and
/// any label name would go through [`sanitize_label`].
pub fn prometheus_text(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = sanitize(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    for g in &snap.gauges {
        let name = sanitize(&g.name);
        out.push_str(&format!(
            "# TYPE {name} gauge\n{name} {}\n",
            fmt_f64(g.value)
        ));
    }
    for h in &snap.histograms {
        let name = sanitize(&h.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for b in &h.buckets {
            cumulative += b.count;
            let le = if b.le == f64::MAX {
                "+Inf".to_string()
            } else {
                fmt_f64(b.le)
            };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!(
            "{name}_sum {}\n{name}_count {}\n",
            fmt_f64(h.sum),
            h.count
        ));
    }
    // Recorder bookkeeping that lives outside the registry proper.
    out.push_str(&format!(
        "# TYPE telemetry_span_roots_dropped counter\ntelemetry_span_roots_dropped {}\n",
        snap.spans.dropped_roots
    ));
    out.push_str(&format!(
        "# TYPE telemetry_events_evicted counter\ntelemetry_events_evicted {}\n",
        snap.events.evicted
    ));
    out.push_str(&format!(
        "# TYPE telemetry_open_spans gauge\ntelemetry_open_spans {}\n",
        snap.spans.open_spans
    ));
    out
}

/// Renders the snapshot's span forest as Chrome `trace_event` JSON
/// (the "JSON Array Format" with `displayTimeUnit`), loadable in
/// `about:tracing` and Perfetto. See the module docs for how
/// timestamps are synthesized.
pub fn chrome_trace_json(snap: &TelemetrySnapshot) -> String {
    let mut events: Vec<String> = vec![
        meta_event(WALL_PID, 0, "process_name", "wall clock"),
        meta_event(SIM_PID, 0, "process_name", "simulated cost"),
    ];
    // One thread row per trace id, in order of first appearance.
    let mut tids: Vec<u64> = Vec::new();
    let mut wall_cursor: Vec<f64> = Vec::new();
    let mut sim_cursor: Vec<f64> = Vec::new();
    for root in &snap.spans.roots {
        let tid = match tids.iter().position(|t| *t == root.trace_id) {
            Some(i) => i,
            None => {
                tids.push(root.trace_id);
                wall_cursor.push(0.0);
                sim_cursor.push(0.0);
                let label = format!("trace {:#x}", root.trace_id);
                let tid = tids.len() - 1;
                events.push(meta_event(WALL_PID, tid as u64 + 1, "thread_name", &label));
                events.push(meta_event(SIM_PID, tid as u64 + 1, "thread_name", &label));
                tid
            }
        };
        wall_cursor[tid] += emit_span(
            &mut events,
            WALL_PID,
            tid as u64 + 1,
            root,
            wall_cursor[tid],
            false,
        );
        sim_cursor[tid] += emit_span(
            &mut events,
            SIM_PID,
            tid as u64 + 1,
            root,
            sim_cursor[tid],
            true,
        );
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Emits `node` (and descendants) as `ph:"X"` complete events starting
/// at `ts`; returns the horizontal extent occupied so siblings can be
/// packed after it.
fn emit_span(
    events: &mut Vec<String>,
    pid: u64,
    tid: u64,
    node: &SpanNode,
    ts: f64,
    sim: bool,
) -> f64 {
    let dur = if sim {
        node.sim_us_total()
    } else {
        node.wall_us
    };
    let mut args = format!(
        "\"trace_id\":\"{:#x}\",\"span_id\":{},\"parent_span_id\":{},\"wall_us\":{},\"sim_us\":{}",
        node.trace_id,
        node.span_id,
        node.parent_span_id,
        fmt_f64(node.wall_us),
        fmt_f64(node.sim_us_total()),
    );
    for (k, v) in &node.tags {
        args.push_str(&format!(",{}:{}", json_str(k), json_field(v)));
    }
    events.push(format!(
        "{{\"name\":{},\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
        json_str(&node.name),
        fmt_f64(ts),
        fmt_f64(dur),
    ));
    let mut child_ts = ts;
    for child in &node.children {
        child_ts += emit_span(events, pid, tid, child, child_ts, sim);
    }
    // Measured child wall time can slightly exceed the parent's own
    // measurement; report the larger extent so rows never overlap.
    dur.max(child_ts - ts)
}

/// Renders the snapshot's bounded event ring as JSON-Lines: one event
/// per line in ring (seq) order, each a `serde_json` rendering of
/// [`crate::EventSnapshot`] — field order is declaration order under
/// the vendored shims, so the output is byte-stable. The final line
/// is a `{"evicted": …, "totals_by_name": …}` trailer so consumers can
/// tell a short log from a truncated one.
///
/// # Errors
///
/// Serialization errors from the JSON layer (none in practice: every
/// field type is JSON-safe).
pub fn events_jsonl(snap: &TelemetrySnapshot) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for event in &snap.events.events {
        out.push_str(&serde_json::to_string(event)?);
        out.push('\n');
    }
    #[derive(serde::Serialize)]
    struct Trailer {
        evicted: u64,
        totals_by_name: Vec<(String, u64)>,
    }
    out.push_str(&serde_json::to_string(&Trailer {
        evicted: snap.events.evicted,
        totals_by_name: snap.events.totals_by_name.clone(),
    })?);
    out.push('\n');
    Ok(out)
}

fn meta_event(pid: u64, tid: u64, name: &str, value: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
        json_str(value)
    )
}

/// Maps an internal dotted metric name (`query.retries`) to a legal
/// Prometheus metric name (`query_retries`): metric names must match
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` per the text exposition format, so every
/// other character becomes `_`, a leading digit gets an `_` prefix, and
/// an empty name falls back to a bare `_` rather than emitting a
/// metric line no scraper would parse.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// [`sanitize`] for label names, which are stricter than metric names:
/// `[a-zA-Z_][a-zA-Z0-9_]*` — no colon allowed — and names starting
/// with `__` are reserved for Prometheus internals, so a sanitized
/// label never grows a double-underscore prefix.
pub fn sanitize_label(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    while out.starts_with("__") {
        out.remove(0);
    }
    out
}

/// Shortest-round-trip float formatting, with non-finite values mapped
/// to the JSON-safe 0 (they do not occur in practice).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_field(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(n) => n.to_string(),
        FieldValue::I64(n) => n.to_string(),
        FieldValue::F64(f) => fmt_f64(*f),
        FieldValue::Bool(b) => b.to_string(),
        FieldValue::Str(s) => json_str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetrySink;

    fn sample_snapshot() -> TelemetrySnapshot {
        let sink = TelemetrySink::recording();
        sink.begin_query(1);
        {
            let root = sink.span("bench.query");
            root.record_sim_us(5.0);
            let child = sink.span("storage.node.scan");
            child.tag("node", 2u64);
            child.record_sim_us(40.0);
        }
        sink.incr("storage.node.scans", 3);
        sink.gauge_set("agent.error", 0.25);
        sink.observe("bench.query_sim_us", 45.0);
        sink.snapshot().unwrap()
    }

    #[test]
    fn prometheus_text_has_types_cumulative_buckets_and_bookkeeping() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE storage_node_scans counter\nstorage_node_scans 3\n"));
        assert!(text.contains("# TYPE agent_error gauge\nagent_error 0.25\n"));
        assert!(text.contains("# TYPE bench_query_sim_us histogram\n"));
        assert!(text.contains("bench_query_sim_us_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("bench_query_sim_us_sum 45\n"));
        assert!(text.contains("bench_query_sim_us_count 1\n"));
        assert!(text.contains("telemetry_events_evicted 0\n"));
        // Buckets are cumulative: the le="50" bucket already counts the
        // 45 observation, and so does every later bucket.
        assert!(text.contains("bench_query_sim_us_bucket{le=\"50\"} 1\n"));
        assert!(text.contains("bench_query_sim_us_bucket{le=\"20\"} 0\n"));
    }

    #[test]
    fn chrome_trace_is_balanced_json_with_both_timelines() {
        let json = chrome_trace_json(&sample_snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(json.ends_with("\n]}\n"));
        // Both pids present, metadata + X events, child carries its tag.
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"simulated cost\""));
        assert!(json.contains("\"name\":\"bench.query\",\"ph\":\"X\",\"pid\":1"));
        assert!(json.contains("\"name\":\"bench.query\",\"ph\":\"X\",\"pid\":2"));
        assert!(json.contains("\"name\":\"storage.node.scan\""));
        assert!(json.contains("\"node\":2"));
        // Balanced braces/brackets — cheap structural validity check.
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn sim_timeline_durations_are_exact() {
        let json = chrome_trace_json(&sample_snapshot());
        // Root sim duration = 5 (own) + 40 (child); child = 40 at ts 0.
        assert!(json.contains("\"pid\":2,\"tid\":1,\"ts\":0,\"dur\":45"));
        assert!(json.contains("\"pid\":2,\"tid\":1,\"ts\":0,\"dur\":40"));
    }

    #[test]
    fn events_jsonl_is_one_event_per_line_plus_trailer() {
        let snap = sample_snapshot();
        let jsonl = events_jsonl(&snap).unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), snap.events.events.len() + 1);
        for line in &lines {
            let depth = line.chars().fold(0i64, |d, c| match c {
                '{' | '[' => d + 1,
                '}' | ']' => d - 1,
                _ => d,
            });
            assert_eq!(depth, 0, "unbalanced JSONL line: {line}");
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(lines.last().unwrap().contains("\"evicted\""));
        // Byte-stable: same snapshot, same bytes.
        assert_eq!(jsonl, events_jsonl(&snap).unwrap());
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn sanitize_produces_legal_metric_names() {
        assert_eq!(sanitize("query.retries"), "query_retries");
        assert_eq!(sanitize("cache-hit.rate"), "cache_hit_rate");
        assert_eq!(sanitize("ns:metric"), "ns:metric");
        assert_eq!(sanitize("2fast·p99"), "_2fast_p99");
        assert_eq!(sanitize(""), "_");
        assert_eq!(sanitize("already_fine"), "already_fine");
    }

    #[test]
    fn sanitize_label_is_stricter_than_metric_names() {
        // Labels may not contain colons and may not start with the
        // reserved `__` prefix.
        assert_eq!(sanitize_label("ns:label"), "ns_label");
        assert_eq!(sanitize_label("tenant.id"), "tenant_id");
        assert_eq!(sanitize_label("9lives"), "_9lives");
        assert_eq!(sanitize_label("__reserved"), "_reserved");
        assert_eq!(sanitize_label("____deep"), "_deep");
        assert_eq!(sanitize_label(""), "_");
    }

    #[test]
    fn illegal_metric_names_never_reach_the_exposition() {
        let sink = TelemetrySink::recording();
        sink.incr("query.retries", 2);
        sink.incr("2nd.class-metric", 1);
        let text = prometheus_text(&sink.snapshot().unwrap());
        assert!(text.contains("# TYPE query_retries counter\nquery_retries 2\n"));
        assert!(text.contains("# TYPE _2nd_class_metric counter\n_2nd_class_metric 1\n"));
        // Every emitted line starts with a legal name character.
        for line in text.lines() {
            let first = line.chars().next().unwrap();
            assert!(
                first == '#' || first.is_ascii_alphabetic() || first == '_' || first == ':',
                "illegal exposition line: {line}"
            );
        }
    }
}
