//! Metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Registration takes a short registry lock; recording through a
//! [`Counter`] handle is a single relaxed atomic add, and histogram
//! observations take only that histogram's own mutex, so the hot path
//! never contends on the registry itself.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

/// Upper bucket bounds (microseconds or any unit the caller picks) in a
/// 1–2–5 decade ladder; one implicit overflow bucket sits above the
/// last bound.
pub const DEFAULT_BUCKET_BOUNDS: [f64; 31] = [
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4,
    5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
];

/// Handle to a registered counter; increments are lock-free. A handle
/// from a `Noop` sink silently discards increments.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub(crate) fn new(cell: Option<Arc<AtomicU64>>) -> Self {
        Self(cell)
    }

    pub fn add(&self, by: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(by, Ordering::Relaxed);
        }
    }

    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for a handle from a `Noop` sink).
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistogramCell {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Shared registry behind a recording sink.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Mutex<HistogramCell>>>>,
}

impl MetricsRegistry {
    pub(crate) fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(cell) = self.counters.read().get(name) {
            return Arc::clone(cell);
        }
        Arc::clone(self.counters.write().entry(name.to_string()).or_default())
    }

    /// Reads a counter's current value *without* registering it: a name
    /// never incremented reads 0 and leaves no trace in snapshots, so
    /// read-only consumers (the service ledger's per-request
    /// retry/failover deltas) cannot perturb the recorded table set.
    pub(crate) fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .get(name)
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }

    pub(crate) fn gauge_set(&self, name: &str, value: f64) {
        // The read guard must drop before the write() below — holding it
        // across the write acquisition deadlocks the (non-reentrant) lock.
        let existing = self.gauges.read().get(name).map(Arc::clone);
        let cell = match existing {
            Some(cell) => cell,
            None => Arc::clone(self.gauges.write().entry(name.to_string()).or_default()),
        };
        cell.store(value.to_bits(), Ordering::Relaxed);
    }

    pub(crate) fn observe(&self, name: &str, value: f64) {
        let existing = self.histograms.read().get(name).map(Arc::clone);
        let cell = match existing {
            Some(cell) => cell,
            None => Arc::clone(self.histograms.write().entry(name.to_string()).or_default()),
        };
        let mut h = cell.lock();
        if h.counts.is_empty() {
            h.counts = vec![0; DEFAULT_BUCKET_BOUNDS.len() + 1];
            h.min = f64::INFINITY;
            h.max = f64::NEG_INFINITY;
        }
        let idx = DEFAULT_BUCKET_BOUNDS
            .iter()
            .position(|bound| value <= *bound)
            .unwrap_or(DEFAULT_BUCKET_BOUNDS.len());
        h.counts[idx] += 1;
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    }

    pub(crate) fn counter_snapshots(&self) -> Vec<CounterSnapshot> {
        let mut out: Vec<CounterSnapshot> = self
            .counters
            .read()
            .iter()
            .map(|(name, cell)| CounterSnapshot {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    pub(crate) fn gauge_snapshots(&self) -> Vec<GaugeSnapshot> {
        let mut out: Vec<GaugeSnapshot> = self
            .gauges
            .read()
            .iter()
            .map(|(name, cell)| GaugeSnapshot {
                name: name.clone(),
                value: f64::from_bits(cell.load(Ordering::Relaxed)),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    pub(crate) fn histogram_snapshots(&self) -> Vec<HistogramSnapshot> {
        let mut out: Vec<HistogramSnapshot> = self
            .histograms
            .read()
            .iter()
            .map(|(name, cell)| summarize(name, &cell.lock()))
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

fn summarize(name: &str, h: &HistogramCell) -> HistogramSnapshot {
    let buckets: Vec<BucketSnapshot> = h
        .counts
        .iter()
        .enumerate()
        .map(|(i, count)| BucketSnapshot {
            le: DEFAULT_BUCKET_BOUNDS.get(i).copied().unwrap_or(f64::MAX),
            count: *count,
        })
        .collect();
    HistogramSnapshot {
        name: name.to_string(),
        count: h.count,
        sum: h.sum,
        min: if h.count == 0 { 0.0 } else { h.min },
        max: if h.count == 0 { 0.0 } else { h.max },
        mean: if h.count == 0 {
            0.0
        } else {
            h.sum / h.count as f64
        },
        p50: percentile(h, 0.50),
        p95: percentile(h, 0.95),
        p99: percentile(h, 0.99),
        p999: percentile(h, 0.999),
        buckets,
    }
}

/// Percentile estimate: locate the bucket where the cumulative count
/// crosses `q·total`, then interpolate linearly inside its bounds
/// (clamped to the observed min/max so estimates never leave the data
/// range).
fn percentile(h: &HistogramCell, q: f64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    let target = q * h.count as f64;
    let mut cumulative = 0u64;
    for (i, count) in h.counts.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        let before = cumulative as f64;
        cumulative += count;
        if cumulative as f64 >= target {
            let lower = if i == 0 {
                h.min
            } else {
                DEFAULT_BUCKET_BOUNDS[i - 1].max(h.min)
            };
            let upper = DEFAULT_BUCKET_BOUNDS
                .get(i)
                .copied()
                .unwrap_or(h.max)
                .min(h.max);
            let fraction = ((target - before) / *count as f64).clamp(0.0, 1.0);
            return (lower + fraction * (upper - lower)).clamp(h.min, h.max);
        }
    }
    h.max
}

/// Serializable counter reading.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Serializable gauge reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    pub name: String,
    pub value: f64,
}

/// One histogram bucket: observations `≤ le` (cumulative style is left
/// to consumers; counts here are per-bucket).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    pub le: f64,
    pub count: u64,
}

/// Serializable histogram summary with interpolated percentiles. The
/// `mean` is count-weighted (`sum / count`), and `sum` is the exact
/// accumulated total, so exporters can emit it without reconstructing
/// it from the mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    /// Exact sum of all observations (0 when empty).
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Count-weighted mean: `sum / count` (0 when empty).
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    /// 99.9th percentile — the tail the windowed watch layer alerts on.
    pub p999: f64,
    pub buckets: Vec<BucketSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_ordered_and_plausible() {
        let reg = MetricsRegistry::default();
        for i in 1..=1000 {
            reg.observe("lat", f64::from(i));
        }
        let snap = &reg.histogram_snapshots()[0];
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, 1000.0);
        assert!(snap.p50 > 300.0 && snap.p50 < 700.0, "p50 {}", snap.p50);
        assert!(snap.p95 > 800.0, "p95 {}", snap.p95);
        assert!(snap.p99 >= snap.p95 && snap.p99 <= snap.max);
        assert!(snap.p999 >= snap.p99 && snap.p999 <= snap.max);
        assert_eq!(snap.sum, (1..=1000).map(f64::from).sum::<f64>());
        assert!((snap.mean - snap.sum / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation_collapses_percentiles() {
        let reg = MetricsRegistry::default();
        reg.observe("one", 42.0);
        let snap = &reg.histogram_snapshots()[0];
        assert_eq!(snap.p50, 42.0);
        assert_eq!(snap.p99, 42.0);
        assert_eq!(snap.p999, 42.0);
        assert_eq!(snap.mean, 42.0);
        assert_eq!(snap.sum, 42.0);
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        let reg = MetricsRegistry::default();
        reg.observe("big", 1e12);
        let snap = &reg.histogram_snapshots()[0];
        assert_eq!(snap.buckets.last().unwrap().count, 1);
        assert_eq!(snap.p50, 1e12);
    }

    #[test]
    fn counters_accumulate_across_handles() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.fetch_add(2, Ordering::Relaxed);
        b.fetch_add(3, Ordering::Relaxed);
        assert_eq!(reg.counter_snapshots()[0].value, 5);
    }

    #[test]
    fn counter_handles_read_back_their_value() {
        let reg = MetricsRegistry::default();
        let handle = Counter::new(Some(reg.counter("x")));
        assert_eq!(handle.value(), 0);
        handle.add(7);
        assert_eq!(handle.value(), 7);
        assert_eq!(reg.counter_value("x"), 7);
        assert_eq!(reg.counter_value("absent"), 0);
        assert_eq!(Counter::default().value(), 0);
    }

    #[test]
    fn gauges_keep_last_write() {
        let reg = MetricsRegistry::default();
        reg.gauge_set("g", 1.5);
        reg.gauge_set("g", -2.5);
        assert_eq!(reg.gauge_snapshots()[0].value, -2.5);
    }
}
