//! Deterministic distributed-trace identity.
//!
//! A [`TraceContext`] names one position in a query's span tree:
//! the trace (one per query) and the span that any child work should
//! hang under. Layers that "cross a node boundary" in the simulation —
//! executor → storage node, pipeline → executor, polystore coordinator
//! → constituent system — pass the context explicitly instead of
//! relying on the recorder's ambient span stack, exactly the way a real
//! RPC system ships trace headers. Ids are deterministic: trace ids are
//! a [SplitMix64] finalizer of the query id and span ids come from a
//! per-recorder counter, so two runs of the same seeded workload
//! produce identical trees (no wall-clock, no RNG).
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use serde::{Deserialize, Serialize};

/// Identity carried across layer/node boundaries: which trace this work
/// belongs to and which span is its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Trace id, one per query (0 = no active trace).
    pub trace_id: u64,
    /// The span to parent child work under (0 = none).
    pub span_id: u64,
}

impl TraceContext {
    /// The inactive context: children fall back to the recorder's
    /// ambient span stack (or become roots).
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this context names a live trace.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        Self::NONE
    }
}

/// The deterministic trace id of query `query`: a SplitMix64 finalizer,
/// bijective over `u64` and forced odd so it is never 0. Re-running a
/// seeded workload reproduces the same trace ids.
pub fn trace_id_for_query(query: u64) -> u64 {
    let mut z = query.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_nonzero_and_distinct() {
        assert_eq!(trace_id_for_query(7), trace_id_for_query(7));
        let mut seen = std::collections::HashSet::new();
        for q in 0..1000 {
            let id = trace_id_for_query(q);
            assert_ne!(id, 0);
            assert!(seen.insert(id), "collision at query {q}");
        }
    }

    #[test]
    fn none_context_is_inactive() {
        assert!(!TraceContext::NONE.is_active());
        assert!(!TraceContext::default().is_active());
        assert!(TraceContext {
            trace_id: 3,
            span_id: 0
        }
        .is_active());
    }
}
