//! `sea-telemetry`: spans, metrics, and per-query event logs for the SEA
//! query path.
//!
//! The paper frames every claim in resource terms — nodes touched, bytes
//! moved, layers charged — yet a bare `CostReport`-style total per
//! query says nothing about *where* inside the
//! pipeline/executor/storage stack the cost accrued or *why* the agent
//! chose to predict instead of falling back. This crate is the seam that
//! answers those questions, with three instruments sharing one
//! [`TelemetrySink`]:
//!
//! - a **metrics registry** ([`metrics`]) of named counters, gauges, and
//!   fixed-bucket histograms with p50/p95/p99 summaries;
//! - a **span** API ([`span`]) of RAII guards recording nested timing
//!   trees with both wall-clock and simulated-cost attribution;
//! - a bounded **event log** ([`event`]) — a ring buffer of structured
//!   decision events (`agent.predicted`, `storage.partition_pruned`, …).
//!
//! Everything hangs off a cloneable [`TelemetrySink`], which defaults to
//! [`TelemetrySink::Noop`]: a disabled sink is a single enum-tag check
//! per call site, records nothing, and allocates nothing, so
//! instrumented code paths behave bit-identically to uninstrumented
//! ones. Names follow the `<crate>.<component>.<verb>` convention
//! documented in DESIGN.md ("Observability").
//!
//! ```
//! use sea_telemetry::TelemetrySink;
//!
//! let sink = TelemetrySink::recording();
//! {
//!     let span = sink.span("query.executor.scan");
//!     span.record_sim_us(1250.0);
//!     sink.incr("storage.blocks_scanned", 4);
//!     sink.observe("bench.query_sim_us", 1250.0);
//!     sink.event("storage.partition_pruned", &[("pruned", 3u64.into())]);
//! }
//! let snap = sink.snapshot().expect("recording sink");
//! assert_eq!(snap.spans.roots[0].name, "query.executor.scan");
//! assert_eq!(snap.events.events[0].name, "storage.partition_pruned");
//! ```

pub mod event;
pub mod export;
pub mod metrics;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

pub use event::{EventLogSnapshot, EventSnapshot, FieldValue, MAX_EVENTS};
pub use metrics::{BucketSnapshot, Counter, CounterSnapshot, GaugeSnapshot, HistogramSnapshot};
pub use span::{SpanForestSnapshot, SpanGuard, SpanNode};
pub use trace::{trace_id_for_query, TraceContext};

/// Counter bumped when the bounded event ring evicts an event to make
/// room (overflow would otherwise be silent).
pub const EVENTS_DROPPED_COUNTER: &str = "telemetry.events_dropped";

/// A live consumer of the recorded stream: histogram observations and
/// structured events are forwarded to the tap *after* they are
/// recorded, on the recording thread, in recording order. This is the
/// seam the `sea-watch` windowed-metrics layer hangs off.
///
/// The tap receives the originating sink so it can emit derived
/// telemetry (e.g. `node.suspect` events) back into the same recorder.
/// Implementations MUST ignore their own derived names on re-entry
/// (the sink calls the tap again for every event, including ones the
/// tap itself emitted) and must not hold internal locks while calling
/// back into `sink` — the recorder itself holds no locks across the
/// tap call.
///
/// A `Noop` sink never consults the tap, so disabled telemetry stays
/// zero-cost.
pub trait TelemetryTap: Send + Sync + std::fmt::Debug {
    /// A histogram observation was recorded.
    fn on_observe(&self, sink: &TelemetrySink, name: &str, value: f64);
    /// A structured event was recorded.
    fn on_event(&self, sink: &TelemetrySink, name: &str, fields: &[(&str, FieldValue)]);
}

/// The shared recording backend behind a [`TelemetrySink::Recording`]
/// sink. Cheap to clone via `Arc`; all interior state is thread-safe.
#[derive(Debug, Default)]
pub struct Recorder {
    metrics: metrics::MetricsRegistry,
    spans: span::SpanRecorder,
    events: event::EventLog,
    /// Current query id + 1 (0 = outside any query).
    current_query: AtomicU64,
    /// Optional live consumer of observations and events.
    tap: RwLock<Option<Arc<dyn TelemetryTap>>>,
}

impl Recorder {
    fn query(&self) -> Option<u64> {
        match self.current_query.load(Ordering::Relaxed) {
            0 => None,
            id_plus_one => Some(id_plus_one - 1),
        }
    }
}

/// Entry point for all instrumentation. `Noop` (the default) makes
/// every call a no-op branch; `Recording` funnels into a shared
/// [`Recorder`].
#[derive(Debug, Clone, Default)]
pub enum TelemetrySink {
    /// Disabled: every call returns immediately.
    #[default]
    Noop,
    /// Enabled: calls record into the shared recorder.
    Recording(Arc<Recorder>),
}

impl TelemetrySink {
    /// A disabled sink (same as `default()`).
    pub fn noop() -> Self {
        Self::Noop
    }

    /// A fresh enabled sink with default bounds.
    pub fn recording() -> Self {
        Self::Recording(Arc::new(Recorder::default()))
    }

    pub fn is_enabled(&self) -> bool {
        matches!(self, Self::Recording(_))
    }

    fn recorder(&self) -> Option<&Arc<Recorder>> {
        match self {
            Self::Noop => None,
            Self::Recording(r) => Some(r),
        }
    }

    /// Registers (or fetches) a counter handle; increments through the
    /// handle are lock-free.
    pub fn counter(&self, name: &str) -> Counter {
        Counter::new(self.recorder().map(|r| r.metrics.counter(name)))
    }

    /// One-shot counter increment.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(r) = self.recorder() {
            r.metrics.counter(name).fetch_add(by, Ordering::Relaxed);
        }
    }

    /// Reads a counter's current value without registering it: 0 for a
    /// `Noop` sink or a name never incremented, and the read leaves no
    /// trace in snapshots. Lets read-only consumers (the service
    /// ledger's per-request counter deltas) observe the registry without
    /// perturbing it.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.recorder().map_or(0, |r| r.metrics.counter_value(name))
    }

    /// Sets a gauge to an absolute value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(r) = self.recorder() {
            r.metrics.gauge_set(name, value);
        }
    }

    /// Records one observation into a fixed-bucket histogram, then
    /// forwards it to the attached [`TelemetryTap`], if any.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(r) = self.recorder() {
            r.metrics.observe(name, value);
            let tap = r.tap.read().clone();
            if let Some(tap) = tap {
                tap.on_observe(self, name, value);
            }
        }
    }

    /// Opens a span; it closes (and records) when the guard drops.
    /// Spans opened while another span's guard is live nest under it;
    /// a root span's trace id derives deterministically from the query
    /// set by [`Self::begin_query`].
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_child_of(&TraceContext::NONE, name)
    }

    /// Opens a span explicitly parented under `parent` — the
    /// cross-node form of [`Self::span`], used when work hops to
    /// another simulated node and the ambient stack can't be trusted
    /// to attribute it. With an inactive `parent` this behaves exactly
    /// like [`Self::span`].
    #[must_use]
    pub fn span_child_of(&self, parent: &TraceContext, name: &str) -> SpanGuard {
        match self.recorder() {
            Some(r) => r.spans.enter(Arc::clone(r), name, *parent, r.query()),
            None => SpanGuard::noop(),
        }
    }

    /// Appends a structured event to the bounded per-query log, stamped
    /// with the innermost open span's trace context. Ring overflow bumps
    /// [`EVENTS_DROPPED_COUNTER`].
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        if let Some(r) = self.recorder() {
            let ctx = r.spans.current_ctx();
            if r.events.push(name, r.query(), ctx, fields) {
                r.metrics
                    .counter(EVENTS_DROPPED_COUNTER)
                    .fetch_add(1, Ordering::Relaxed);
            }
            let tap = r.tap.read().clone();
            if let Some(tap) = tap {
                tap.on_event(self, name, fields);
            }
        }
    }

    /// Attaches a live [`TelemetryTap`] consuming every subsequent
    /// observation and event (replacing any previous tap). A no-op on a
    /// `Noop` sink — disabled telemetry stays zero-cost.
    pub fn set_tap(&self, tap: Arc<dyn TelemetryTap>) {
        if let Some(r) = self.recorder() {
            *r.tap.write() = Some(tap);
        }
    }

    /// Detaches the tap, if any.
    pub fn clear_tap(&self) {
        if let Some(r) = self.recorder() {
            *r.tap.write() = None;
        }
    }

    /// Marks the start of a query; subsequent events are tagged with
    /// `id` until the next call.
    pub fn begin_query(&self, id: u64) {
        if let Some(r) = self.recorder() {
            r.current_query.store(id + 1, Ordering::Relaxed);
        }
    }

    /// Snapshots all recorded state into plain serializable structs.
    /// Returns `None` for a `Noop` sink.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.recorder().map(|r| TelemetrySnapshot {
            counters: r.metrics.counter_snapshots(),
            gauges: r.metrics.gauge_snapshots(),
            histograms: r.metrics.histogram_snapshots(),
            spans: r.spans.snapshot(),
            events: r.events.snapshot(),
        })
    }
}

/// Point-in-time copy of everything a recorder has seen, ready for
/// `serde_json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
    pub spans: SpanForestSnapshot,
    pub events: EventLogSnapshot,
}

impl TelemetrySnapshot {
    /// Counter value by exact name (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Histogram summary by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Total occurrences of an event name (survives ring-buffer
    /// eviction).
    pub fn event_count(&self, name: &str) -> u64 {
        self.events
            .totals_by_name
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, c)| *c)
    }

    /// Maximum nesting depth across recorded span trees (a lone root
    /// has depth 1).
    pub fn span_depth(&self) -> usize {
        fn depth(n: &SpanNode) -> usize {
            1 + n.children.iter().map(depth).max().unwrap_or(0)
        }
        self.spans.roots.iter().map(depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_records_nothing() {
        let sink = TelemetrySink::noop();
        assert!(!sink.is_enabled());
        sink.incr("a", 1);
        sink.observe("h", 1.0);
        sink.event("e", &[("k", 1u64.into())]);
        let _span = sink.span("s");
        assert!(sink.snapshot().is_none());
    }

    #[test]
    fn spans_nest_and_attribute_sim_cost() {
        let sink = TelemetrySink::recording();
        {
            let outer = sink.span("bench.query");
            outer.record_sim_us(10.0);
            {
                let mid = sink.span("query.executor.scan");
                mid.record_sim_us(7.0);
                let inner = sink.span("storage.node.scan");
                inner.record_sim_us(3.0);
            }
        }
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.span_depth(), 3);
        let root = &snap.spans.roots[0];
        assert_eq!(root.name, "bench.query");
        assert_eq!(root.sim_us, 10.0);
        assert_eq!(root.children[0].children[0].name, "storage.node.scan");
    }

    #[test]
    fn events_carry_query_ids_and_payloads() {
        let sink = TelemetrySink::recording();
        sink.event("before", &[]);
        sink.begin_query(7);
        sink.event("agent.predicted", &[("est_error", 0.02.into())]);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.events.events[0].query, None);
        assert_eq!(snap.events.events[1].query, Some(7));
        assert_eq!(snap.event_count("agent.predicted"), 1);
        assert_eq!(
            snap.events.events[1].fields[0],
            ("est_error".to_string(), FieldValue::F64(0.02))
        );
    }

    #[test]
    fn counters_and_histograms_summarize() {
        let sink = TelemetrySink::recording();
        let c = sink.counter("storage.blocks_scanned");
        c.add(3);
        c.add(4);
        sink.incr("storage.blocks_scanned", 1);
        for i in 1..=100 {
            sink.observe("lat", f64::from(i));
        }
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("storage.blocks_scanned"), 8);
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 100);
        assert!(h.p50 >= h.min && h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
        assert!((h.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_survives_json_round_trip() {
        let sink = TelemetrySink::recording();
        {
            let s = sink.span("a");
            s.record_sim_us(5.0);
        }
        sink.incr("c", 2);
        sink.observe("h", 1.5);
        sink.event("e", &[("why", "test".into()), ("flag", true.into())]);
        let snap = sink.snapshot().unwrap();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counter("c"), 2);
        assert_eq!(back.spans.roots[0].name, "a");
        assert_eq!(back.event_count("e"), 1);
    }

    #[test]
    fn counter_value_reads_without_registering() {
        let sink = TelemetrySink::recording();
        assert_eq!(sink.counter_value("never.touched"), 0);
        assert!(
            sink.snapshot().unwrap().counters.is_empty(),
            "a read must not register the counter"
        );
        sink.incr("query.retries", 3);
        assert_eq!(sink.counter_value("query.retries"), 3);
        assert_eq!(TelemetrySink::noop().counter_value("query.retries"), 0);
    }

    #[test]
    fn tap_sees_observations_and_events_and_may_emit_derived_events() {
        /// Counts what it sees and re-emits a derived event for every
        /// non-derived event (exercising the re-entry guard).
        #[derive(Debug, Default)]
        struct Probe {
            observes: std::sync::atomic::AtomicU64,
            events: std::sync::atomic::AtomicU64,
        }
        impl TelemetryTap for Probe {
            fn on_observe(&self, _sink: &TelemetrySink, _name: &str, value: f64) {
                self.observes
                    .fetch_add(value as u64, std::sync::atomic::Ordering::Relaxed);
            }
            fn on_event(&self, sink: &TelemetrySink, name: &str, _f: &[(&str, FieldValue)]) {
                if name.starts_with("derived.") {
                    return;
                }
                self.events
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                sink.event("derived.echo", &[]);
            }
        }
        let sink = TelemetrySink::recording();
        let probe = Arc::new(Probe::default());
        sink.set_tap(Arc::clone(&probe) as Arc<dyn TelemetryTap>);
        sink.observe("h", 3.0);
        sink.observe("h", 4.0);
        sink.event("storage.node.scanned", &[]);
        assert_eq!(probe.observes.load(Ordering::Relaxed), 7);
        assert_eq!(probe.events.load(Ordering::Relaxed), 1);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.event_count("derived.echo"), 1, "derived event lands");
        sink.clear_tap();
        sink.observe("h", 10.0);
        assert_eq!(probe.observes.load(Ordering::Relaxed), 7, "tap detached");
        // Noop sinks never consult a tap.
        TelemetrySink::noop().set_tap(probe);
    }

    #[test]
    fn sink_clones_share_the_recorder() {
        let sink = TelemetrySink::recording();
        let clone = sink.clone();
        clone.incr("shared", 5);
        assert_eq!(sink.snapshot().unwrap().counter("shared"), 5);
    }
}
