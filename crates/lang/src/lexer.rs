//! Tokenizer for the statement language.
//!
//! Produces identifiers/keywords, numeric literals, and punctuation,
//! each carrying its byte span so the parser can report exact error
//! locations. `--` starts a comment running to the end of the line
//! (SQL convention), which is what lets workload-replay files carry
//! annotations without a separate preprocessor.

use crate::error::ParseError;

/// One token kind. Keywords are lexed as [`Tok::Ident`] and resolved
/// case-insensitively by the parser, so error messages can echo the
/// user's original spelling.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    Number(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
}

impl Tok {
    /// How the token reads in an error message.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Number(n) => format!("`{n:?}`"),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::LBracket => "`[`".to_string(),
            Tok::RBracket => "`]`".to_string(),
            Tok::Comma => "`,`".to_string(),
        }
    }
}

/// A token plus its byte span in the source statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: Tok,
    pub start: usize,
    pub end: usize,
}

/// Tokenizes `src`, skipping whitespace and `--` comments.
pub(crate) fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let kind = match b {
            b'(' => {
                i += 1;
                Tok::LParen
            }
            b')' => {
                i += 1;
                Tok::RParen
            }
            b'[' => {
                i += 1;
                Tok::LBracket
            }
            b']' => {
                i += 1;
                Tok::RBracket
            }
            b',' => {
                i += 1;
                Tok::Comma
            }
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                Tok::Ident(src[start..i].to_string())
            }
            b'0'..=b'9' | b'.' => lex_number(src, bytes, &mut i)?,
            b'-' | b'+' if matches!(bytes.get(i + 1), Some(b'0'..=b'9' | b'.')) => {
                lex_number(src, bytes, &mut i)?
            }
            _ => {
                let ch = src[i..].chars().next().unwrap_or('?');
                return Err(ParseError::new(
                    src,
                    i,
                    i + ch.len_utf8(),
                    format!("unexpected character `{ch}`"),
                ));
            }
        };
        toks.push(Token {
            kind,
            start,
            end: i,
        });
    }
    Ok(toks)
}

/// Lexes one numeric literal starting at `*i` (sign already vetted by
/// the caller). Accepts `[+-]?digits[.digits][eE[+-]digits]`.
fn lex_number(src: &str, bytes: &[u8], i: &mut usize) -> Result<Tok, ParseError> {
    let start = *i;
    if matches!(bytes[*i], b'-' | b'+') {
        *i += 1;
    }
    while *i < bytes.len() && bytes[*i].is_ascii_digit() {
        *i += 1;
    }
    if *i < bytes.len() && bytes[*i] == b'.' {
        *i += 1;
        while *i < bytes.len() && bytes[*i].is_ascii_digit() {
            *i += 1;
        }
    }
    if *i < bytes.len() && matches!(bytes[*i], b'e' | b'E') {
        *i += 1;
        if *i < bytes.len() && matches!(bytes[*i], b'-' | b'+') {
            *i += 1;
        }
        while *i < bytes.len() && bytes[*i].is_ascii_digit() {
            *i += 1;
        }
    }
    let text = &src[start..*i];
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Tok::Number(v)),
        Ok(_) => Err(ParseError::new(
            src,
            start,
            *i,
            format!("numeric literal `{text}` overflows f64"),
        )),
        Err(_) => Err(ParseError::new(
            src,
            start,
            *i,
            format!("invalid number literal `{text}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_punctuation_idents_and_numbers() {
        let toks = lex("SELECT mean(d0), p95(d1)").unwrap();
        assert_eq!(toks.len(), 10);
        assert_eq!(toks[0].kind, Tok::Ident("SELECT".into()));
        assert_eq!(toks[2].kind, Tok::LParen);
        assert_eq!((toks[0].start, toks[0].end), (0, 6));
    }

    #[test]
    fn lexes_signed_and_scientific_numbers() {
        let toks = lex("[-5.5, 1e3]").unwrap();
        assert_eq!(toks[1].kind, Tok::Number(-5.5));
        assert_eq!(toks[3].kind, Tok::Number(1000.0));
    }

    #[test]
    fn comments_run_to_end_of_line() {
        let toks = lex("count() -- trailing note\n").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn rejects_unknown_characters_with_span() {
        let err = lex("SELECT %").unwrap_err();
        assert_eq!((err.start, err.end), (7, 8));
        assert!(err.message.contains('%'), "{}", err.message);
    }

    #[test]
    fn rejects_overflowing_literals() {
        let err = lex("1e999").unwrap_err();
        assert!(err.message.contains("overflows"), "{}", err.message);
    }
}
