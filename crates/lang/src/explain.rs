//! EXPLAIN: render a statement's plan, the planner's decisions, the
//! estimated-vs-actual simulated cost, and the recorded span tree.
//!
//! The report is **deterministic**: every number is derived from the
//! simulated cost model or from [`SpanNode::sim_us`] — never from
//! host wall-clock (`SpanNode::wall_us` is deliberately excluded), so
//! the rendering is bit-identical across machines, runs, and
//! `SEA_EXEC_THREADS` settings, and a golden test can pin it.

use std::fmt::Write as _;

use sea_common::{AnalyticalQuery, Result};
use sea_optimizer::QueryStrategy;
use sea_telemetry::{FieldValue, SpanNode, TelemetrySink};

use crate::ast::{LogicalPlan, ModeHint};
use crate::planner::{AggregateResult, Frontend};

impl Frontend<'_> {
    /// Executes `queries` one at a time under a recording telemetry
    /// sink and renders the EXPLAIN report. Single-query traced
    /// execution keeps span replay bit-identical at any thread count
    /// (batch telemetry is coherent but schedule-dependent, so EXPLAIN
    /// never batches).
    pub(crate) fn execute_explained(
        &mut self,
        plan: &LogicalPlan,
        queries: &[AnalyticalQuery],
    ) -> Result<(Vec<AggregateResult>, String)> {
        let sink = TelemetrySink::recording();
        let rec_exec = self.executor.clone().with_telemetry(sink.clone());
        let mode = self.effective_mode(plan);
        let mut results = Vec::with_capacity(queries.len());
        let mut decisions = Vec::with_capacity(queries.len());
        for (spec, q) in plan.aggregates.iter().zip(queries) {
            let (result, decision) = match mode {
                ModeHint::Exact => {
                    if let Some(engines) = &self.engines {
                        let (strategy, est_scan, est_index) = self.choose_strategy(engines, q)?;
                        let out = match strategy {
                            // The scan path runs through the recording
                            // executor — same cluster, same cost model —
                            // so the trace section shows the real span
                            // tree for the chosen plan.
                            QueryStrategy::ScanAggregate => {
                                rec_exec.execute_direct(&self.table, q)?
                            }
                            QueryStrategy::IndexFetch => {
                                let out =
                                    engines.execute(strategy, q, self.executor.cost_model())?;
                                let span = sink.span("lang.index_fetch");
                                span.tag("candidates_node_parallel", true);
                                span.record_sim_us(out.cost.wall_us);
                                out
                            }
                        };
                        (
                            AggregateResult {
                                spec: spec.clone(),
                                answer: out.answer,
                                cost: out.cost,
                                source: "exact",
                                strategy: Some(strategy),
                            },
                            Decision {
                                estimate: Some(match strategy {
                                    QueryStrategy::ScanAggregate => est_scan,
                                    QueryStrategy::IndexFetch => est_index,
                                }),
                                est_scan: Some(est_scan),
                                est_index: Some(est_index),
                            },
                        )
                    } else {
                        let out = rec_exec.execute_direct(&self.table, q)?;
                        (
                            AggregateResult {
                                spec: spec.clone(),
                                answer: out.answer,
                                cost: out.cost,
                                source: "exact",
                                strategy: None,
                            },
                            Decision::none(),
                        )
                    }
                }
                ModeHint::Predict => {
                    let r = self
                        .execute_predict(plan, std::slice::from_ref(q))?
                        .remove(0);
                    let span = sink.span("lang.predict");
                    span.record_sim_us(0.0);
                    (
                        AggregateResult {
                            spec: spec.clone(),
                            ..r
                        },
                        Decision::none(),
                    )
                }
                ModeHint::Auto => {
                    let pipeline = self.pipeline.as_mut().expect("effective_mode");
                    let out = pipeline.process(&rec_exec, q)?;
                    (
                        AggregateResult {
                            spec: spec.clone(),
                            answer: out.answer,
                            cost: out.cost,
                            source: out.source.label(),
                            strategy: None,
                        },
                        Decision::none(),
                    )
                }
            };
            results.push(result);
            decisions.push(decision);
        }
        let snapshot = sink.snapshot().expect("recording sink has a snapshot");
        let text = render(
            plan,
            mode,
            &self.table,
            &results,
            &decisions,
            &snapshot.spans.roots,
        );
        Ok((results, text))
    }
}

/// Per-aggregate estimate bookkeeping for the report.
struct Decision {
    estimate: Option<f64>,
    est_scan: Option<f64>,
    est_index: Option<f64>,
}

impl Decision {
    fn none() -> Self {
        Decision {
            estimate: None,
            est_scan: None,
            est_index: None,
        }
    }
}

fn strategy_name(s: Option<QueryStrategy>) -> &'static str {
    match s {
        Some(QueryStrategy::ScanAggregate) => "scan",
        Some(QueryStrategy::IndexFetch) => "index",
        None => "executor",
    }
}

fn render(
    plan: &LogicalPlan,
    mode: ModeHint,
    table: &str,
    results: &[AggregateResult],
    decisions: &[Decision],
    roots: &[SpanNode],
) -> String {
    let mut canonical = plan.clone();
    canonical.explain = false;
    let mut out = String::new();
    let _ = writeln!(out, "EXPLAIN {canonical}");
    let _ = writeln!(out, "plan");
    let _ = writeln!(out, "  table: {table}");
    let _ = writeln!(
        out,
        "  mode: {} (requested {})",
        mode.keyword(),
        plan.mode.keyword()
    );
    let _ = writeln!(out, "decision");
    for (r, d) in results.iter().zip(decisions) {
        let mut line = format!(
            "  {}: path={}({})",
            r.spec,
            r.source,
            strategy_name(r.strategy)
        );
        if let (Some(s), Some(i)) = (d.est_scan, d.est_index) {
            let _ = write!(line, " est_scan_us={s:.1} est_index_us={i:.1}");
        }
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "cost");
    for (r, d) in results.iter().zip(decisions) {
        let mut line = format!("  {}:", r.spec);
        if let Some(e) = d.estimate {
            let _ = write!(line, " estimated_us={e:.1}");
        }
        let _ = write!(
            line,
            " actual_sim_us={:.1} money={:.6} answered_fraction={:.3}",
            r.cost.wall_us, r.cost.money, r.cost.answered_fraction
        );
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "trace");
    if roots.is_empty() {
        let _ = writeln!(out, "  (no spans recorded)");
    }
    for root in roots {
        render_span(&mut out, root, 1);
    }
    // Drop the trailing newline so goldens are editor-stable.
    out.truncate(out.trim_end_matches('\n').len());
    out
}

fn render_span(out: &mut String, node: &SpanNode, depth: usize) {
    let mut line = format!("{}{}", "  ".repeat(depth), node.name);
    for (k, v) in &node.tags {
        let _ = write!(line, " {k}={}", fmt_field(v));
    }
    let _ = write!(line, " sim_us={:.1}", node.sim_us_total());
    let _ = writeln!(out, "{line}");
    for child in &node.children {
        render_span(out, child, depth + 1);
    }
}

fn fmt_field(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(x) => x.to_string(),
        FieldValue::I64(x) => x.to_string(),
        FieldValue::F64(x) => format!("{x:.1}"),
        FieldValue::Bool(x) => x.to_string(),
        FieldValue::Str(x) => x.clone(),
    }
}
