//! # sea-lang
//!
//! The declarative statement front end (ROADMAP open item 2, in the
//! spirit of Shark and the Declarative Data Analytics survey): a small
//! SQL-ish language compiled through the existing stack instead of
//! hand-constructing [`sea_common::AnalyticalQuery`] values per
//! workload.
//!
//! ```text
//! statement ──parse──▶ LogicalPlan ──plan──▶ AnalyticalQuery*
//!                                    │
//!                     ┌──────────────┼───────────────────┐
//!                     ▼              ▼                   ▼
//!               ExecutionEngines  Executor         AgentPipeline
//!               (scan vs index)  (exact/batch)  (predict/cache/exact)
//! ```
//!
//! * [`parse`] — deterministic recursive-descent parser producing a
//!   typed [`LogicalPlan`]; errors are span-annotated [`ParseError`]s
//!   with a stable, golden-tested rendering.
//! * [`LogicalPlan`] — the typed plan; its `Display` impl is a
//!   canonical pretty-printer that round-trips through [`parse`].
//! * [`Frontend`] — plans and executes statements against an
//!   [`sea_query::Executor`], optionally routing through
//!   [`sea_optimizer::ExecutionEngines`] (scan-vs-index chosen by
//!   [`sea_optimizer::ExecutionEngines::estimate_cost`]) and an
//!   [`sea_core::AgentPipeline`] (the predict-vs-exact-vs-cache
//!   decision). `EXPLAIN` statements additionally render the chosen
//!   path, estimated-vs-actual simulated cost, and the recorded
//!   [`sea_telemetry::SpanNode`] tree.
//! * [`submit_statement`] — tenant-scoped statements through the
//!   [`sea_service::QueryService`] front door.
//!
//! Everything is deterministic: no wall clock, no RNG, and lowered
//! statements produce answers and [`sea_common::CostReport`]s
//! bit-identical to the equivalent hand-built query path at any
//! `SEA_EXEC_THREADS` setting (pinned by experiment E22 and the
//! cross-pool determinism test in `sea-bench`).
//!
//! ```
//! use sea_common::Record;
//! use sea_lang::Frontend;
//! use sea_query::Executor;
//! use sea_storage::{Partitioning, StorageCluster};
//!
//! # fn main() -> sea_common::Result<()> {
//! let mut cluster = StorageCluster::new(2, 64);
//! let records: Vec<Record> = (0..1000)
//!     .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
//!     .collect();
//! cluster.load_table("t", records, Partitioning::Hash)?;
//!
//! let mut front = Frontend::new(Executor::new(&cluster), "t")?;
//! let out = front.run("SELECT count(), mean(d0) WHERE d0 IN [10.0, 19.0]")?;
//! assert_eq!(out.results.len(), 2);
//! assert_eq!(out.plan.to_string(), "SELECT count(), mean(d0) WHERE d0 IN [10.0, 19.0]");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod explain;
mod lexer;
mod parser;
mod planner;

pub use ast::{AggSpec, BallPred, LogicalPlan, ModeHint, RangePred, Selection};
pub use error::ParseError;
pub use parser::parse;
pub use planner::{submit_statement, AggregateResult, Frontend, StatementOutcome, TableSchema};
