//! Hand-written recursive-descent parser for the statement language.
//!
//! Grammar (EBNF; keywords case-insensitive — the full reference with
//! examples lives in `docs/QUERYLANG.md`):
//!
//! ```text
//! statement := "SELECT" agg { "," agg } [ where ] [ mode ] [ "EXPLAIN" ]
//! where     := "WHERE" pred { "AND" pred }
//! pred      := dim "IN" "[" number "," number "]"
//!            | "WITHIN" "BALL" "(" "(" number { "," number } ")" "," number ")"
//! mode      := "WITH" "MODE" ( "exact" | "predict" | "auto" )
//! agg       := "count" "(" ")"
//!            | fn1 "(" dim ")"
//!            | "quantile" "(" dim "," number ")"
//!            | fn2 "(" dim "," dim ")"
//! fn1       := "sum" | "mean" | "avg" | "variance" | "var" | "min"
//!            | "max" | "median" | "p50" | "p95" | "p99"
//! fn2       := "corr" | "correlation" | "regress" | "regression"
//! dim       := "d" digits
//! ```
//!
//! Semantic rules enforced here (not just shape): quantile levels lie in
//! `[0, 1]`, range bounds are ordered, ball radii are positive, at most
//! one ball, no duplicate range dimensions, and ranges and balls never
//! mix (the core [`sea_common::Region`] is a box *or* a ball).

use crate::ast::{AggSpec, BallPred, LogicalPlan, ModeHint, RangePred, Selection};
use crate::error::ParseError;
use crate::lexer::{lex, Tok, Token};

/// Parses one statement into a [`LogicalPlan`].
///
/// # Errors
///
/// A span-annotated [`ParseError`] on the first violation; the error's
/// `Display` form is stable (golden-tested) and converts into
/// [`sea_common::SeaError::InvalidArgument`] via `From`.
///
/// ```
/// let plan = sea_lang::parse("SELECT mean(d0) WHERE d0 IN [0.0, 10.0]").unwrap();
/// assert_eq!(plan.aggregates, vec![sea_lang::AggSpec::Mean(0)]);
/// ```
pub fn parse(src: &str) -> Result<LogicalPlan, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    let plan = p.statement()?;
    if let Some(tok) = p.peek() {
        return Err(p.err_at(
            tok.start,
            tok.end,
            format!(
                "unexpected trailing input starting at {}",
                tok.kind.describe()
            ),
        ));
    }
    Ok(plan)
}

struct Parser<'s> {
    src: &'s str,
    toks: Vec<Token>,
    pos: usize,
}

impl<'s> Parser<'s> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, start: usize, end: usize, message: impl Into<String>) -> ParseError {
        ParseError::new(self.src, start, end, message)
    }

    /// Error at the current token, or at end of input.
    fn err_here(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => self.err_at(
                t.start,
                t.end,
                format!("expected {expected}, found {}", t.kind.describe()),
            ),
            None => self.err_at(
                self.src.len(),
                self.src.len(),
                format!("expected {expected}, found end of statement"),
            ),
        }
    }

    /// Consumes the next token if it is the given keyword
    /// (case-insensitive).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token {
            kind: Tok::Ident(s),
            ..
        }) = self.peek()
        {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err_here(&format!("keyword `{}`", kw)))
        }
    }

    fn expect_punct(&mut self, kind: Tok, what: &str) -> Result<Token, ParseError> {
        match self.peek() {
            Some(t) if t.kind == kind => Ok(self.next().unwrap()),
            _ => Err(self.err_here(what)),
        }
    }

    fn expect_number(&mut self) -> Result<(f64, Token), ParseError> {
        match self.peek() {
            Some(Token {
                kind: Tok::Number(_),
                ..
            }) => {
                let t = self.next().unwrap();
                let Tok::Number(v) = t.kind else {
                    unreachable!()
                };
                Ok((v, t))
            }
            _ => Err(self.err_here("a number")),
        }
    }

    /// `d<digits>`, e.g. `d0`.
    fn expect_dim(&mut self) -> Result<usize, ParseError> {
        match self.peek() {
            Some(Token {
                kind: Tok::Ident(s),
                start,
                end,
            }) => {
                let (start, end, s) = (*start, *end, s.clone());
                let digits = s.strip_prefix('d').unwrap_or("");
                if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                    digits.parse::<usize>().map_err(|_| {
                        self.err_at(start, end, format!("dimension index `{s}` is out of range"))
                    })
                } else {
                    Err(self.err_at(
                        start,
                        end,
                        format!("expected a dimension like `d0`, found `{s}`"),
                    ))
                }
            }
            _ => Err(self.err_here("a dimension like `d0`")),
        }
    }

    fn statement(&mut self) -> Result<LogicalPlan, ParseError> {
        if self.toks.is_empty() {
            return Err(self.err_at(0, self.src.len(), "empty statement"));
        }
        self.expect_keyword("SELECT")?;
        let mut aggregates = vec![self.aggregate()?];
        while matches!(
            self.peek(),
            Some(Token {
                kind: Tok::Comma,
                ..
            })
        ) {
            self.pos += 1;
            aggregates.push(self.aggregate()?);
        }
        let selection = if self.eat_keyword("WHERE") {
            self.where_clause()?
        } else {
            Selection::All
        };
        let mode = if self.eat_keyword("WITH") {
            self.expect_keyword("MODE")?;
            self.mode_keyword()?
        } else {
            ModeHint::Auto
        };
        let explain = self.eat_keyword("EXPLAIN");
        Ok(LogicalPlan {
            aggregates,
            selection,
            mode,
            explain,
        })
    }

    fn mode_keyword(&mut self) -> Result<ModeHint, ParseError> {
        for (kw, mode) in [
            ("exact", ModeHint::Exact),
            ("predict", ModeHint::Predict),
            ("auto", ModeHint::Auto),
        ] {
            if self.eat_keyword(kw) {
                return Ok(mode);
            }
        }
        Err(self.err_here("a query mode: `exact`, `predict`, or `auto`"))
    }

    fn aggregate(&mut self) -> Result<AggSpec, ParseError> {
        let Some(Token {
            kind: Tok::Ident(name),
            start,
            end,
        }) = self.peek()
        else {
            return Err(self.err_here("an aggregate function"));
        };
        let (name, start, end) = (name.to_ascii_lowercase(), *start, *end);
        self.pos += 1;
        self.expect_punct(Tok::LParen, "`(`")?;
        let spec = match name.as_str() {
            "count" => {
                if !matches!(
                    self.peek(),
                    Some(Token {
                        kind: Tok::RParen,
                        ..
                    })
                ) {
                    let (s, e) = self
                        .peek()
                        .map_or((self.src.len(), self.src.len()), |t| (t.start, t.end));
                    return Err(self.err_at(s, e, "count() takes no arguments"));
                }
                AggSpec::Count
            }
            "sum" => AggSpec::Sum(self.expect_dim()?),
            "mean" | "avg" => AggSpec::Mean(self.expect_dim()?),
            "variance" | "var" => AggSpec::Variance(self.expect_dim()?),
            "min" => AggSpec::Min(self.expect_dim()?),
            "max" => AggSpec::Max(self.expect_dim()?),
            "median" => AggSpec::Median(self.expect_dim()?),
            "p50" => AggSpec::Quantile(self.expect_dim()?, 0.5),
            "p95" => AggSpec::Quantile(self.expect_dim()?, 0.95),
            "p99" => AggSpec::Quantile(self.expect_dim()?, 0.99),
            "quantile" => {
                let dim = self.expect_dim()?;
                self.expect_punct(Tok::Comma, "`,`")?;
                let (q, qtok) = self.expect_number()?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(self.err_at(
                        qtok.start,
                        qtok.end,
                        format!("quantile level must be within [0, 1], got {q:?}"),
                    ));
                }
                AggSpec::Quantile(dim, q)
            }
            "corr" | "correlation" => {
                let x = self.expect_dim()?;
                self.expect_punct(Tok::Comma, "`,`")?;
                AggSpec::Correlation(x, self.expect_dim()?)
            }
            "regress" | "regression" => {
                let x = self.expect_dim()?;
                self.expect_punct(Tok::Comma, "`,`")?;
                AggSpec::Regression(x, self.expect_dim()?)
            }
            other => {
                return Err(self.err_at(
                    start,
                    end,
                    format!("expected aggregate function, found `{other}`"),
                ))
            }
        };
        self.expect_punct(Tok::RParen, "`)`")?;
        Ok(spec)
    }

    fn where_clause(&mut self) -> Result<Selection, ParseError> {
        let mut ranges: Vec<RangePred> = Vec::new();
        let mut ball: Option<(BallPred, (usize, usize))> = None;
        loop {
            let pred_start = self
                .peek()
                .map_or((self.src.len(), self.src.len()), |t| (t.start, t.end));
            if self.eat_keyword("WITHIN") {
                let b = self.ball_pred()?;
                let span = (pred_start.0, self.prev_end());
                if ball.is_some() {
                    return Err(self.err_at(
                        span.0,
                        span.1,
                        "at most one ball predicate is allowed",
                    ));
                }
                ball = Some((b, span));
            } else {
                let dim = self.expect_dim().map_err(|_| {
                    self.err_here("a predicate: `d<i> IN [lo, hi]` or `WITHIN BALL((…), r)`")
                })?;
                self.expect_keyword("IN")?;
                let open = self.expect_punct(Tok::LBracket, "`[`")?;
                let (lo, _) = self.expect_number()?;
                self.expect_punct(Tok::Comma, "`,`")?;
                let (hi, _) = self.expect_number()?;
                let close = self.expect_punct(Tok::RBracket, "`]`")?;
                if lo > hi {
                    return Err(self.err_at(
                        open.start,
                        close.end,
                        format!("empty range: lower bound {lo:?} exceeds upper bound {hi:?}"),
                    ));
                }
                if ranges.iter().any(|r| r.dim == dim) {
                    return Err(self.err_at(
                        pred_start.0,
                        self.prev_end(),
                        format!("duplicate range predicate for `d{dim}`"),
                    ));
                }
                ranges.push(RangePred { dim, lo, hi });
            }
            if !self.eat_keyword("AND") {
                break;
            }
        }
        match (ranges.is_empty(), ball) {
            (true, Some((b, _))) => Ok(Selection::Ball(b)),
            (false, None) => {
                ranges.sort_by_key(|r| r.dim);
                Ok(Selection::Ranges(ranges))
            }
            (false, Some((_, span))) => Err(self.err_at(
                span.0,
                span.1,
                "range and ball predicates cannot be combined: a selection is one box or one ball",
            )),
            (true, None) => Err(self.err_here("a predicate after `WHERE`")),
        }
    }

    /// `BALL ( ( n {, n} ) , n )` — `WITHIN` already consumed.
    fn ball_pred(&mut self) -> Result<BallPred, ParseError> {
        self.expect_keyword("BALL")?;
        self.expect_punct(Tok::LParen, "`(`")?;
        self.expect_punct(Tok::LParen, "`(`")?;
        let mut center = vec![self.expect_number()?.0];
        while matches!(
            self.peek(),
            Some(Token {
                kind: Tok::Comma,
                ..
            })
        ) {
            self.pos += 1;
            center.push(self.expect_number()?.0);
        }
        self.expect_punct(Tok::RParen, "`)`")?;
        self.expect_punct(Tok::Comma, "`,`")?;
        let (radius, rtok) = self.expect_number()?;
        if radius <= 0.0 {
            return Err(self.err_at(
                rtok.start,
                rtok.end,
                format!("ball radius must be positive, got {radius:?}"),
            ));
        }
        self.expect_punct(Tok::RParen, "`)`")?;
        Ok(BallPred { center, radius })
    }

    /// End offset of the most recently consumed token.
    fn prev_end(&self) -> usize {
        self.toks
            .get(self.pos.wrapping_sub(1))
            .map_or(self.src.len(), |t| t.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_headline_statement() {
        let plan = parse(
            "SELECT mean(d0), p95(d1) WHERE d0 IN [0.0, 10.0] AND d1 IN [5.0, 6.0] \
             WITH MODE exact EXPLAIN",
        )
        .unwrap();
        assert_eq!(
            plan.aggregates,
            vec![AggSpec::Mean(0), AggSpec::Quantile(1, 0.95)]
        );
        assert_eq!(plan.mode, ModeHint::Exact);
        assert!(plan.explain);
        let Selection::Ranges(r) = &plan.selection else {
            panic!("expected ranges");
        };
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn keywords_are_case_insensitive_and_ranges_sort() {
        let plan = parse("select Count() where d1 in [1.0, 2.0] and d0 in [3.0, 4.0]").unwrap();
        let Selection::Ranges(r) = &plan.selection else {
            panic!("expected ranges");
        };
        assert_eq!((r[0].dim, r[1].dim), (0, 1));
    }

    #[test]
    fn sugar_normalizes() {
        let plan = parse("SELECT avg(d2), var(d0), p50(d1), correlation(d0, d1)").unwrap();
        assert_eq!(
            plan.aggregates,
            vec![
                AggSpec::Mean(2),
                AggSpec::Variance(0),
                AggSpec::Quantile(1, 0.5),
                AggSpec::Correlation(0, 1),
            ]
        );
    }

    #[test]
    fn ball_selection_parses() {
        let plan = parse("SELECT count() WHERE WITHIN BALL((50.0, 50.0), 10.0)").unwrap();
        assert_eq!(
            plan.selection,
            Selection::Ball(BallPred {
                center: vec![50.0, 50.0],
                radius: 10.0,
            })
        );
    }

    #[test]
    fn structural_errors_have_spans() {
        for (stmt, needle) in [
            ("", "empty statement"),
            ("FETCH count()", "expected keyword `SELECT`"),
            ("SELECT frob(d0)", "expected aggregate function"),
            ("SELECT count(d0)", "count() takes no arguments"),
            ("SELECT mean(x)", "expected a dimension like `d0`"),
            ("SELECT quantile(d0, 1.5)", "quantile level must be within"),
            ("SELECT count() WHERE d0 IN [5.0, 2.0]", "empty range"),
            (
                "SELECT count() WHERE d0 IN [0.0, 1.0] AND d0 IN [2.0, 3.0]",
                "duplicate range predicate",
            ),
            (
                "SELECT count() WHERE d0 IN [0.0, 1.0] AND WITHIN BALL((0.0), 1.0)",
                "cannot be combined",
            ),
            (
                "SELECT count() WHERE WITHIN BALL((0.0), 1.0) AND WITHIN BALL((2.0), 1.0)",
                "at most one ball",
            ),
            (
                "SELECT count() WHERE WITHIN BALL((0.0), -1.0)",
                "radius must be positive",
            ),
            ("SELECT count() WITH MODE turbo", "a query mode"),
            ("SELECT count() garbage", "unexpected trailing input"),
            ("SELECT mean(d0", "expected `)`"),
        ] {
            let err = parse(stmt).unwrap_err();
            assert!(
                err.message.contains(needle) || err.to_string().contains(needle),
                "statement {stmt:?}: expected {needle:?} in {:?}",
                err.to_string()
            );
            assert!(err.end <= stmt.len() || err.start >= stmt.len());
        }
    }
}
