//! Lowering: [`LogicalPlan`] → [`AnalyticalQuery`] executions.
//!
//! The [`Frontend`] binds a statement surface to the existing execution
//! stack — [`Executor`] for exact answers (batched statements share one
//! superset scan), [`sea_optimizer::ExecutionEngines`] for
//! scan-vs-index access-path selection, and [`AgentPipeline`] for the
//! predict-vs-exact-vs-cache decision — without changing any of their
//! semantics: a lowered statement produces answers and
//! [`sea_common::CostReport`]s bit-identical to hand-constructing the
//! same [`AnalyticalQuery`] values (pinned by E22 and
//! `crates/bench/tests/lang_determinism.rs`).

use sea_common::{
    AnalyticalQuery, AnswerValue, Ball, CostReport, Point, Rect, Region, Result, SeaError,
};
use sea_core::AgentPipeline;
use sea_optimizer::{ExecutionEngines, QueryStrategy};
use sea_query::Executor;
use sea_service::{QueryService, SubmitOutcome};
use sea_storage::StorageCluster;

use crate::ast::{LogicalPlan, ModeHint, Selection};
use crate::parse;

/// What the planner needs to know about a table: its dimensionality and
/// the domain box that fills in unconstrained dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    dims: usize,
    domain: Rect,
}

impl TableSchema {
    /// A schema with an explicit domain box.
    pub fn new(domain: Rect) -> Self {
        TableSchema {
            dims: domain.dims(),
            domain,
        }
    }

    /// Infers the schema from the cluster's block catalog: the domain is
    /// the union of all block zone-map bounds (NaN-tight, so it is the
    /// actual data bounding box).
    ///
    /// # Errors
    ///
    /// Missing table, or a table whose blocks expose no bounds.
    pub fn infer(cluster: &StorageCluster, table: &str) -> Result<Self> {
        let dims = cluster.dims(table)?;
        let mut lo = vec![f64::INFINITY; dims];
        let mut hi = vec![f64::NEG_INFINITY; dims];
        let mut any = false;
        for (_, _, bounds, _, _) in cluster.block_catalog(table)? {
            any = true;
            for d in 0..dims {
                lo[d] = lo[d].min(bounds.lo()[d]);
                hi[d] = hi[d].max(bounds.hi()[d]);
            }
        }
        if !any {
            return Err(SeaError::Empty(format!(
                "table {table} has no blocks with bounds to infer a domain from"
            )));
        }
        Ok(TableSchema {
            dims,
            domain: Rect::new(lo, hi)?,
        })
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The domain box unconstrained dimensions default to.
    pub fn domain(&self) -> &Rect {
        &self.domain
    }
}

impl LogicalPlan {
    /// Lowers the selection to a core [`Region`]: unconstrained
    /// dimensions span the schema domain.
    ///
    /// # Errors
    ///
    /// Dimension indices outside the schema, ball centers with the
    /// wrong arity, or degenerate geometry.
    pub fn region(&self, schema: &TableSchema) -> Result<Region> {
        match &self.selection {
            Selection::All => Ok(Region::Range(schema.domain().clone())),
            Selection::Ranges(ranges) => {
                let mut lo = schema.domain().lo().to_vec();
                let mut hi = schema.domain().hi().to_vec();
                for r in ranges {
                    if r.dim >= schema.dims() {
                        return Err(SeaError::invalid(format!(
                            "dimension d{} out of range: table has {} dimensions",
                            r.dim,
                            schema.dims()
                        )));
                    }
                    lo[r.dim] = r.lo;
                    hi[r.dim] = r.hi;
                }
                Ok(Region::Range(Rect::new(lo, hi)?))
            }
            Selection::Ball(b) => {
                if b.center.len() != schema.dims() {
                    return Err(SeaError::invalid(format!(
                        "ball center has {} coordinates but table has {} dimensions",
                        b.center.len(),
                        schema.dims()
                    )));
                }
                Ok(Region::Radius(Ball::new(
                    Point::new(b.center.clone()),
                    b.radius,
                )?))
            }
        }
    }

    /// Lowers the whole plan to one [`AnalyticalQuery`] per aggregate,
    /// all sharing the same region.
    ///
    /// # Errors
    ///
    /// As [`LogicalPlan::region`], plus aggregate/dimension validation.
    pub fn to_queries(&self, schema: &TableSchema) -> Result<Vec<AnalyticalQuery>> {
        let region = self.region(schema)?;
        self.aggregates
            .iter()
            .map(|spec| {
                let kind = spec.to_kind();
                kind.validate(schema.dims())?;
                Ok(AnalyticalQuery::new(region.clone(), kind))
            })
            .collect()
    }
}

/// One aggregate's answer with its provenance and bill.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    /// The aggregate as written (canonical form).
    pub spec: crate::AggSpec,
    /// The answer.
    pub answer: AnswerValue,
    /// Simulated resource bill (zero for pure predictions).
    pub cost: CostReport,
    /// Provenance label: `exact`, `predicted`, `cached`, or `degraded`.
    pub source: &'static str,
    /// Access path when the optimizer chose one (`None` on the plain
    /// executor scan path and on non-exact answers).
    pub strategy: Option<QueryStrategy>,
}

/// The outcome of running one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct StatementOutcome {
    /// The parsed plan (printing it gives the canonical statement).
    pub plan: LogicalPlan,
    /// One result per aggregate, in statement order.
    pub results: Vec<AggregateResult>,
    /// Rendered EXPLAIN report when the statement asked for one.
    pub explain: Option<String>,
}

/// The statement front end: parses, plans, and executes statements
/// against one table.
///
/// Construction wires in progressively more machinery:
///
/// * [`Frontend::new`] — exact execution only ([`ModeHint::Auto`]
///   degrades to exact). Multi-aggregate statements execute as one
///   [`Executor::execute_batch`] call sharing a superset scan.
/// * [`Frontend::with_engines`] — attaches
///   [`ExecutionEngines`]; exact statements then pick
///   scan-vs-index per query by modelled cost estimates.
/// * [`Frontend::with_pipeline`] — attaches an [`AgentPipeline`];
///   `auto` statements route through its predict-vs-exact-vs-cache
///   decision, and `predict` statements serve the agent's answer.
#[derive(Debug)]
pub struct Frontend<'a> {
    pub(crate) executor: Executor<'a>,
    pub(crate) table: String,
    pub(crate) schema: TableSchema,
    pub(crate) engines: Option<ExecutionEngines<'a>>,
    pub(crate) pipeline: Option<AgentPipeline>,
}

impl<'a> Frontend<'a> {
    /// Creates a front end over `executor` answering against `table`,
    /// inferring the schema from the cluster's block catalog.
    ///
    /// # Errors
    ///
    /// Missing table or un-inferable domain (see [`TableSchema::infer`]).
    pub fn new(executor: Executor<'a>, table: impl Into<String>) -> Result<Self> {
        let table = table.into();
        let schema = TableSchema::infer(executor.cluster(), &table)?;
        Ok(Frontend {
            executor,
            table,
            schema,
            engines: None,
            pipeline: None,
        })
    }

    /// Attaches access-path selection: builds a secondary grid index
    /// with `cells_per_dim` cells over the inferred domain and lets
    /// exact statements choose scan vs index by estimated cost.
    ///
    /// # Errors
    ///
    /// Grid-construction errors.
    pub fn with_engines(mut self, cells_per_dim: usize) -> Result<Self> {
        let engines = ExecutionEngines::build(
            self.executor.cluster(),
            &self.table,
            self.schema.domain().clone(),
            cells_per_dim,
        )?;
        self.engines = Some(engines);
        Ok(self)
    }

    /// Attaches an agent pipeline for `auto` and `predict` statements.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: AgentPipeline) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// The inferred (or provided) table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The attached pipeline, if any.
    pub fn pipeline(&self) -> Option<&AgentPipeline> {
        self.pipeline.as_ref()
    }

    /// Parses and executes one statement.
    ///
    /// # Errors
    ///
    /// Parse errors (as [`SeaError::InvalidArgument`] with the rendered
    /// span), planning errors, and execution errors.
    pub fn run(&mut self, statement: &str) -> Result<StatementOutcome> {
        let plan = parse(statement)?;
        self.run_plan(plan)
    }

    /// Executes an already-parsed plan.
    ///
    /// # Errors
    ///
    /// As [`Frontend::run`], minus parsing.
    pub fn run_plan(&mut self, plan: LogicalPlan) -> Result<StatementOutcome> {
        let queries = plan.to_queries(&self.schema)?;
        if plan.explain {
            let (results, text) = self.execute_explained(&plan, &queries)?;
            Ok(StatementOutcome {
                plan,
                results,
                explain: Some(text),
            })
        } else {
            let results = self.execute(&plan, &queries)?;
            Ok(StatementOutcome {
                plan,
                results,
                explain: None,
            })
        }
    }

    /// The mode a plan actually executes under: `auto` without a
    /// pipeline degrades to exact.
    pub(crate) fn effective_mode(&self, plan: &LogicalPlan) -> ModeHint {
        match plan.mode {
            ModeHint::Auto if self.pipeline.is_none() => ModeHint::Exact,
            m => m,
        }
    }

    fn execute(
        &mut self,
        plan: &LogicalPlan,
        queries: &[AnalyticalQuery],
    ) -> Result<Vec<AggregateResult>> {
        match self.effective_mode(plan) {
            ModeHint::Exact => self.execute_exact(plan, queries),
            ModeHint::Predict => self.execute_predict(plan, queries),
            ModeHint::Auto => {
                let pipeline = self.pipeline.as_mut().expect("checked by effective_mode");
                let mut results = Vec::with_capacity(queries.len());
                for (spec, q) in plan.aggregates.iter().zip(queries) {
                    let out = pipeline.process(&self.executor, q)?;
                    results.push(AggregateResult {
                        spec: spec.clone(),
                        answer: out.answer,
                        cost: out.cost,
                        source: out.source.label(),
                        strategy: None,
                    });
                }
                Ok(results)
            }
        }
    }

    pub(crate) fn execute_exact(
        &self,
        plan: &LogicalPlan,
        queries: &[AnalyticalQuery],
    ) -> Result<Vec<AggregateResult>> {
        if let Some(engines) = &self.engines {
            let mut results = Vec::with_capacity(queries.len());
            for (spec, q) in plan.aggregates.iter().zip(queries) {
                let (strategy, _, _) = self.choose_strategy(engines, q)?;
                let out = engines.execute(strategy, q, self.executor.cost_model())?;
                results.push(AggregateResult {
                    spec: spec.clone(),
                    answer: out.answer,
                    cost: out.cost,
                    source: "exact",
                    strategy: Some(strategy),
                });
            }
            return Ok(results);
        }
        let outcomes: Vec<_> = if queries.len() > 1 {
            self.executor
                .execute_batch(&self.table, queries)
                .into_iter()
                .collect::<Result<_>>()?
        } else {
            queries
                .iter()
                .map(|q| self.executor.execute_direct(&self.table, q))
                .collect::<Result<_>>()?
        };
        Ok(plan
            .aggregates
            .iter()
            .zip(outcomes)
            .map(|(spec, out)| AggregateResult {
                spec: spec.clone(),
                answer: out.answer,
                cost: out.cost,
                source: "exact",
                strategy: None,
            })
            .collect())
    }

    pub(crate) fn execute_predict(
        &self,
        plan: &LogicalPlan,
        queries: &[AnalyticalQuery],
    ) -> Result<Vec<AggregateResult>> {
        let Some(pipeline) = &self.pipeline else {
            return Err(SeaError::invalid(
                "WITH MODE predict requires an agent pipeline (Frontend::with_pipeline)",
            ));
        };
        plan.aggregates
            .iter()
            .zip(queries)
            .map(|(spec, q)| {
                let p = pipeline.agent().predict(q)?;
                Ok(AggregateResult {
                    spec: spec.clone(),
                    answer: p.answer,
                    cost: CostReport::zero(),
                    source: "predicted",
                    strategy: None,
                })
            })
            .collect()
    }

    /// Chooses the cheaper access path by modelled estimates (ties go to
    /// the scan: it is the conservative, bandwidth-bound default).
    pub(crate) fn choose_strategy(
        &self,
        engines: &ExecutionEngines<'_>,
        query: &AnalyticalQuery,
    ) -> Result<(QueryStrategy, f64, f64)> {
        let model = self.executor.cost_model();
        let scan = engines.estimate_cost(QueryStrategy::ScanAggregate, query, model)?;
        let index = engines.estimate_cost(QueryStrategy::IndexFetch, query, model)?;
        let strategy = if index < scan {
            QueryStrategy::IndexFetch
        } else {
            QueryStrategy::ScanAggregate
        };
        Ok((strategy, scan, index))
    }
}

/// Parses one tenant-scoped statement and submits each lowered query
/// through the service front door (admission control, budgets, ledger).
///
/// Returns the parsed plan plus one [`SubmitOutcome`] per aggregate, in
/// statement order. `EXPLAIN` and `WITH MODE` are rejected here: the
/// service owns the execution policy for its tenants.
///
/// # Errors
///
/// Parse/plan errors, unknown tenants, and submission errors.
pub fn submit_statement(
    service: &mut QueryService<'_>,
    tenant: &str,
    statement: &str,
) -> Result<(LogicalPlan, Vec<SubmitOutcome>)> {
    let schema = TableSchema::infer(service.executor().cluster(), service.table())?;
    let plan = parse(statement)?;
    if plan.explain || plan.mode != ModeHint::Auto {
        return Err(SeaError::invalid(
            "tenant statements must not carry EXPLAIN or WITH MODE: the service decides",
        ));
    }
    let queries = plan.to_queries(&schema)?;
    let outcomes = queries
        .iter()
        .map(|q| service.submit(tenant, q))
        .collect::<Result<Vec<_>>>()?;
    Ok((plan, outcomes))
}
