//! Span-annotated parse errors with a stable, golden-testable rendering.

use sea_common::SeaError;

/// A parse failure: what went wrong, where in the statement, and the
/// statement itself so the rendering can point at the offending bytes.
///
/// The [`std::fmt::Display`] output is part of the crate's contract: it
/// is asserted verbatim by golden tests and by the error catalog in
/// `docs/QUERYLANG.md`, so any change to the format is a breaking change
/// to those fixtures.
///
/// ```
/// let err = sea_lang::parse("SELECT frob(d0)").unwrap_err();
/// assert_eq!(
///     err.to_string(),
///     "parse error at 7..11: expected aggregate function, found `frob`\n\
///      \x20 SELECT frob(d0)\n\
///      \x20        ^^^^",
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the offending region starts.
    pub start: usize,
    /// Byte offset one past the offending region (`start == end` marks a
    /// point, e.g. unexpected end of input).
    pub end: usize,
    /// What was expected or which rule was violated.
    pub message: String,
    /// The source statement the spans index into.
    pub src: String,
}

impl ParseError {
    /// Creates an error over `src` at byte span `start..end`.
    pub fn new(src: &str, start: usize, end: usize, message: impl Into<String>) -> Self {
        ParseError {
            start,
            end,
            message: message.into(),
            src: src.to_string(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "parse error at {}..{}: {}",
            self.start, self.end, self.message
        )?;
        // Locate the line containing `start` (statements are usually one
        // line, but the renderer must not panic on embedded newlines).
        let start = self.start.min(self.src.len());
        let line_start = self.src[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = self.src[line_start..]
            .find('\n')
            .map_or(self.src.len(), |i| line_start + i);
        let line = &self.src[line_start..line_end];
        writeln!(f, "  {line}")?;
        let col = start - line_start;
        let width = self.end.min(line_end).saturating_sub(start).max(1);
        write!(f, "  {}{}", " ".repeat(col), "^".repeat(width))
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for SeaError {
    fn from(e: ParseError) -> Self {
        SeaError::InvalidArgument(e.to_string())
    }
}
