//! The typed logical plan a statement parses to, plus its canonical
//! pretty-printer.
//!
//! The printer and [`crate::parse`] are inverses: printing a plan and
//! re-parsing the text yields a structurally equal plan (property-tested
//! in `tests/props.rs`). Canonicalization happens at parse time — sugar
//! aggregates (`avg`, `p95`, …) normalize to their canonical forms and
//! range predicates sort by dimension — so the printed form is a stable
//! identity for a statement.

use std::fmt;

use sea_common::AggregateKind;

/// An aggregate call as written in a statement.
///
/// This mirrors [`AggregateKind`] but is a closed enum owned by this
/// crate: the printer can match it exhaustively, and parser-level sugar
/// (`avg` → [`AggSpec::Mean`], `p95(d)` → `quantile(d, 0.95)`)
/// normalizes here before planning maps it onto the core type via
/// [`AggSpec::to_kind`].
#[derive(Debug, Clone, PartialEq)]
pub enum AggSpec {
    /// `count()` — number of records in the selection.
    Count,
    /// `sum(d)` — sum of attribute `d`.
    Sum(usize),
    /// `mean(d)` (also `avg(d)`) — mean of attribute `d`.
    Mean(usize),
    /// `variance(d)` (also `var(d)`) — population variance.
    Variance(usize),
    /// `min(d)` — minimum of attribute `d`.
    Min(usize),
    /// `max(d)` — maximum of attribute `d`.
    Max(usize),
    /// `median(d)` — median of attribute `d`.
    Median(usize),
    /// `quantile(d, q)` (also `p50`/`p95`/`p99`) — `q`-quantile.
    Quantile(usize, f64),
    /// `corr(x, y)` (also `correlation`) — Pearson correlation.
    Correlation(usize, usize),
    /// `regress(x, y)` (also `regression`) — least-squares slope and
    /// intercept of `y` on `x`.
    Regression(usize, usize),
}

impl AggSpec {
    /// Maps onto the core aggregate type the executor computes.
    pub fn to_kind(&self) -> AggregateKind {
        match *self {
            AggSpec::Count => AggregateKind::Count,
            AggSpec::Sum(dim) => AggregateKind::Sum { dim },
            AggSpec::Mean(dim) => AggregateKind::Mean { dim },
            AggSpec::Variance(dim) => AggregateKind::Variance { dim },
            AggSpec::Min(dim) => AggregateKind::Min { dim },
            AggSpec::Max(dim) => AggregateKind::Max { dim },
            AggSpec::Median(dim) => AggregateKind::Median { dim },
            AggSpec::Quantile(dim, q) => AggregateKind::Quantile { dim, q },
            AggSpec::Correlation(x, y) => AggregateKind::Correlation { x, y },
            AggSpec::Regression(x, y) => AggregateKind::Regression { x, y },
        }
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AggSpec::Count => write!(f, "count()"),
            AggSpec::Sum(d) => write!(f, "sum(d{d})"),
            AggSpec::Mean(d) => write!(f, "mean(d{d})"),
            AggSpec::Variance(d) => write!(f, "variance(d{d})"),
            AggSpec::Min(d) => write!(f, "min(d{d})"),
            AggSpec::Max(d) => write!(f, "max(d{d})"),
            AggSpec::Median(d) => write!(f, "median(d{d})"),
            AggSpec::Quantile(d, q) => write!(f, "quantile(d{d}, {q:?})"),
            AggSpec::Correlation(x, y) => write!(f, "corr(d{x}, d{y})"),
            AggSpec::Regression(x, y) => write!(f, "regress(d{x}, d{y})"),
        }
    }
}

/// One per-dimension interval predicate: `d<dim> IN [lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangePred {
    /// Constrained attribute index.
    pub dim: usize,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

/// A whole-point ball predicate: `WITHIN BALL((c0, …), radius)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BallPred {
    /// Ball center, one coordinate per table dimension.
    pub center: Vec<f64>,
    /// Ball radius (strictly positive).
    pub radius: f64,
}

/// The statement's selection region.
///
/// Mirrors [`sea_common::Region`]: a selection is an axis-aligned box
/// (conjunction of range predicates; unconstrained dimensions span the
/// table domain) *or* one ball — the parser rejects mixtures, which the
/// core region model cannot represent.
#[derive(Debug, Clone, PartialEq)]
pub enum Selection {
    /// No `WHERE` clause: the whole table domain.
    All,
    /// Conjunction of ranges, sorted by dimension, one per dimension.
    Ranges(Vec<RangePred>),
    /// A single ball over the full point.
    Ball(BallPred),
}

/// Execution-mode hint: who answers the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModeHint {
    /// Let the system decide (agent pipeline when attached, exact
    /// otherwise) — the default.
    #[default]
    Auto,
    /// Force exact execution against base data.
    Exact,
    /// Force the agent's prediction (never touches base data).
    Predict,
}

impl ModeHint {
    /// Lower-case keyword as written in statements and EXPLAIN output.
    pub fn keyword(&self) -> &'static str {
        match self {
            ModeHint::Auto => "auto",
            ModeHint::Exact => "exact",
            ModeHint::Predict => "predict",
        }
    }
}

/// A parsed statement: the typed logical plan the planner lowers into
/// [`sea_common::AnalyticalQuery`] executions.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalPlan {
    /// Selected aggregates, in statement order (at least one).
    pub aggregates: Vec<AggSpec>,
    /// The selection region.
    pub selection: Selection,
    /// Execution-mode hint (`WITH MODE …`, default [`ModeHint::Auto`]).
    pub mode: ModeHint,
    /// Whether the statement asked for an `EXPLAIN` report.
    pub explain: bool,
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, agg) in self.aggregates.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{agg}")?;
        }
        match &self.selection {
            Selection::All => {}
            Selection::Ranges(ranges) => {
                write!(f, " WHERE ")?;
                for (i, r) in ranges.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "d{} IN [{:?}, {:?}]", r.dim, r.lo, r.hi)?;
                }
            }
            Selection::Ball(b) => {
                write!(f, " WHERE WITHIN BALL((")?;
                for (i, c) in b.center.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c:?}")?;
                }
                write!(f, "), {:?})", b.radius)?;
            }
        }
        if self.mode != ModeHint::Auto {
            write!(f, " WITH MODE {}", self.mode.keyword())?;
        }
        if self.explain {
            write!(f, " EXPLAIN")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_printing_is_stable() {
        let plan = LogicalPlan {
            aggregates: vec![AggSpec::Mean(0), AggSpec::Quantile(1, 0.95)],
            selection: Selection::Ranges(vec![RangePred {
                dim: 0,
                lo: 2.5,
                hi: 10.0,
            }]),
            mode: ModeHint::Exact,
            explain: true,
        };
        assert_eq!(
            plan.to_string(),
            "SELECT mean(d0), quantile(d1, 0.95) WHERE d0 IN [2.5, 10.0] WITH MODE exact EXPLAIN"
        );
    }

    #[test]
    fn ball_and_default_mode_print_minimally() {
        let plan = LogicalPlan {
            aggregates: vec![AggSpec::Count],
            selection: Selection::Ball(BallPred {
                center: vec![50.0, 50.0],
                radius: 10.0,
            }),
            mode: ModeHint::Auto,
            explain: false,
        };
        assert_eq!(
            plan.to_string(),
            "SELECT count() WHERE WITHIN BALL((50.0, 50.0), 10.0)"
        );
    }
}
