//! Property tests: the canonical printer and the parser are inverses.

use proptest::prelude::*;

use sea_lang::{parse, AggSpec, BallPred, LogicalPlan, ModeHint, RangePred, Selection};

fn arb_agg() -> impl Strategy<Value = AggSpec> {
    prop_oneof![
        Just(AggSpec::Count),
        (0usize..4).prop_map(AggSpec::Sum),
        (0usize..4).prop_map(AggSpec::Mean),
        (0usize..4).prop_map(AggSpec::Variance),
        (0usize..4).prop_map(AggSpec::Min),
        (0usize..4).prop_map(AggSpec::Max),
        (0usize..4).prop_map(AggSpec::Median),
        (0usize..4, 0.0..=1.0).prop_map(|(d, q)| AggSpec::Quantile(d, q)),
        (0usize..4, 0usize..4).prop_map(|(x, y)| AggSpec::Correlation(x, y)),
        (0usize..4, 0usize..4).prop_map(|(x, y)| AggSpec::Regression(x, y)),
    ]
}

fn arb_selection() -> impl Strategy<Value = Selection> {
    // Ranges: per-dimension (enabled, lo, width) triples keep dims
    // distinct and pre-sorted, the parser's canonical form.
    let ranges = proptest::prop::collection::vec((0u8..2, -50.0..50.0, 0.0..25.0), 1..5).prop_map(
        |per_dim| {
            let preds: Vec<RangePred> = per_dim
                .into_iter()
                .enumerate()
                .filter(|(_, (on, _, _))| *on == 1)
                .map(|(dim, (_, lo, width))| RangePred {
                    dim,
                    lo,
                    hi: lo + width,
                })
                .collect();
            if preds.is_empty() {
                Selection::All
            } else {
                Selection::Ranges(preds)
            }
        },
    );
    let ball = (
        proptest::prop::collection::vec(-50.0..50.0, 1..4),
        0.1..30.0,
    )
        .prop_map(|(center, radius)| Selection::Ball(BallPred { center, radius }));
    prop_oneof![Just(Selection::All), ranges, ball]
}

fn arb_plan() -> impl Strategy<Value = LogicalPlan> {
    (
        proptest::prop::collection::vec(arb_agg(), 1..4),
        arb_selection(),
        prop_oneof![
            Just(ModeHint::Auto),
            Just(ModeHint::Exact),
            Just(ModeHint::Predict)
        ],
        0u8..2,
    )
        .prop_map(|(aggregates, selection, mode, explain)| LogicalPlan {
            aggregates,
            selection,
            mode,
            explain: explain == 1,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_then_parse_roundtrips(plan in arb_plan()) {
        let printed = plan.to_string();
        let reparsed = parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse of {printed:?} failed:\n{e}")))?;
        prop_assert_eq!(&reparsed, &plan, "printed: {}", printed);
        // And printing is a fixed point: parse(print(p)) prints identically.
        prop_assert_eq!(reparsed.to_string(), printed);
    }
}
