//! Integration tests for the planner: lowered statements must be
//! bit-identical to hand-constructing the same [`AnalyticalQuery`]
//! values against the same executor — the front end adds a surface, not
//! semantics.

use sea_common::{AggregateKind, AnalyticalQuery, AnswerValue, Record, Rect, Region};
use sea_core::{AgentConfig, AgentPipeline, ExecMode};
use sea_lang::{parse, submit_statement, Frontend, ModeHint};
use sea_query::Executor;
use sea_service::{QueryService, TenantConfig};
use sea_storage::{Partitioning, StorageCluster};

/// 2-D grid over [0, 100)²: d0 = i % 100, d1 = i / 100.
fn cluster() -> StorageCluster {
    let mut cluster = StorageCluster::new(4, 128);
    let records: Vec<Record> = (0..10_000)
        .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
        .collect();
    cluster
        .load_table("t", records, Partitioning::Hash)
        .unwrap();
    cluster
}

fn assert_bits_eq(a: &AnswerValue, b: &AnswerValue) {
    match (a, b) {
        (AnswerValue::Scalar(x), AnswerValue::Scalar(y)) => assert_eq!(x.to_bits(), y.to_bits()),
        (AnswerValue::Pair(x0, x1), AnswerValue::Pair(y0, y1)) => {
            assert_eq!(x0.to_bits(), y0.to_bits());
            assert_eq!(x1.to_bits(), y1.to_bits());
        }
        _ => panic!("answer shape mismatch: {a:?} vs {b:?}"),
    }
}

#[test]
fn multi_aggregate_statement_is_bit_identical_to_hand_built_batch() {
    let cluster = cluster();
    let mut front = Frontend::new(Executor::new(&cluster), "t").unwrap();
    let out = front
        .run("SELECT count(), mean(d0), p95(d1) WHERE d0 IN [20.0, 60.0] AND d1 IN [10.0, 30.0]")
        .unwrap();

    let region = Region::Range(Rect::new(vec![20.0, 10.0], vec![60.0, 30.0]).unwrap());
    let hand: Vec<AnalyticalQuery> = [
        AggregateKind::Count,
        AggregateKind::Mean { dim: 0 },
        AggregateKind::Quantile { dim: 1, q: 0.95 },
    ]
    .into_iter()
    .map(|k| AnalyticalQuery::new(region.clone(), k))
    .collect();
    let exec = Executor::new(&cluster);
    let hand_out: Vec<_> = exec
        .execute_batch("t", &hand)
        .into_iter()
        .collect::<sea_common::Result<_>>()
        .unwrap();

    assert_eq!(out.results.len(), 3);
    for (r, h) in out.results.iter().zip(&hand_out) {
        assert_eq!(r.source, "exact");
        assert_bits_eq(&r.answer, &h.answer);
        assert_eq!(r.cost.wall_us.to_bits(), h.cost.wall_us.to_bits());
        assert_eq!(r.cost.money.to_bits(), h.cost.money.to_bits());
        assert_eq!(
            r.cost.answered_fraction.to_bits(),
            h.cost.answered_fraction.to_bits()
        );
    }
}

#[test]
fn single_aggregate_statement_matches_direct_execution() {
    let cluster = cluster();
    let mut front = Frontend::new(Executor::new(&cluster), "t").unwrap();
    let out = front
        .run("SELECT sum(d1) WHERE WITHIN BALL((50.0, 50.0), 12.5)")
        .unwrap();

    let q = AnalyticalQuery::new(
        Region::Radius(
            sea_common::Ball::new(sea_common::Point::new(vec![50.0, 50.0]), 12.5).unwrap(),
        ),
        AggregateKind::Sum { dim: 1 },
    );
    let hand = Executor::new(&cluster).execute_direct("t", &q).unwrap();
    assert_bits_eq(&out.results[0].answer, &hand.answer);
    assert_eq!(
        out.results[0].cost.wall_us.to_bits(),
        hand.cost.wall_us.to_bits()
    );
}

#[test]
fn unconstrained_statement_spans_the_inferred_domain() {
    let cluster = cluster();
    let mut front = Frontend::new(Executor::new(&cluster), "t").unwrap();
    // Data bounding box is [0,99]² so a bare count sees every record.
    assert_eq!(front.schema().domain().lo(), &[0.0, 0.0][..]);
    assert_eq!(front.schema().domain().hi(), &[99.0, 99.0][..]);
    let out = front.run("SELECT count()").unwrap();
    assert_eq!(out.results[0].answer, AnswerValue::Scalar(10_000.0));
}

#[test]
fn engines_pick_a_path_and_preserve_answers() {
    let cluster = cluster();
    let mut front = Frontend::new(Executor::new(&cluster), "t")
        .unwrap()
        .with_engines(10)
        .unwrap();
    // Narrow box: the grid index should win; answer must still be exact.
    let narrow = front
        .run("SELECT count() WHERE d0 IN [4.0, 6.0] AND d1 IN [4.0, 6.0]")
        .unwrap();
    assert_eq!(narrow.results[0].answer, AnswerValue::Scalar(9.0));
    assert!(narrow.results[0].strategy.is_some());
    // Wide box: the scan should win.
    let wide = front.run("SELECT count()").unwrap();
    assert_eq!(wide.results[0].answer, AnswerValue::Scalar(10_000.0));
    assert_eq!(
        wide.results[0].strategy,
        Some(sea_optimizer::QueryStrategy::ScanAggregate)
    );
}

#[test]
fn predict_without_pipeline_is_a_planning_error() {
    let cluster = cluster();
    let mut front = Frontend::new(Executor::new(&cluster), "t").unwrap();
    let err = front
        .run("SELECT count() WITH MODE predict")
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("WITH MODE predict requires an agent pipeline"),
        "unexpected error: {err}"
    );
}

#[test]
fn predict_serves_the_agents_answer_at_zero_cost() {
    let cluster = cluster();
    let exec = Executor::new(&cluster);
    let mut pipe =
        AgentPipeline::new(2, AgentConfig::default(), "t", 0.5, ExecMode::Direct).unwrap();
    // Train the agent on exact answers so predictions are servable.
    for lo in [10.0, 20.0, 30.0, 40.0] {
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![lo, lo], vec![lo + 20.0, lo + 20.0]).unwrap()),
            AggregateKind::Count,
        );
        let truth = exec.execute_direct("t", &q).unwrap();
        pipe.agent_mut().train(&q, &truth.answer).unwrap();
    }
    let mut front = Frontend::new(Executor::new(&cluster), "t")
        .unwrap()
        .with_pipeline(pipe);
    let out = front
        .run("SELECT count() WHERE d0 IN [25.0, 45.0] AND d1 IN [25.0, 45.0] WITH MODE predict")
        .unwrap();
    assert_eq!(out.results[0].source, "predicted");
    assert_eq!(out.results[0].cost.wall_us, 0.0);
    assert!(out.results[0].answer.as_scalar().unwrap() >= 0.0);
}

#[test]
fn auto_routes_through_the_pipeline() {
    let cluster = cluster();
    let pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct).unwrap();
    let mut front = Frontend::new(Executor::new(&cluster), "t")
        .unwrap()
        .with_pipeline(pipe);
    // Cold agent: the first auto statement executes exactly (and trains).
    let out = front
        .run("SELECT count() WHERE d0 IN [10.0, 50.0] AND d1 IN [10.0, 50.0]")
        .unwrap();
    assert_eq!(out.results[0].answer, AnswerValue::Scalar(1681.0));
    assert!(
        ["exact", "predicted", "cached", "degraded"].contains(&out.results[0].source),
        "unexpected source {}",
        out.results[0].source
    );
    assert_eq!(out.plan.mode, ModeHint::Auto);
}

#[test]
fn tenant_statements_flow_through_the_service() {
    let cluster = cluster();
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    svc.register_tenant("a", TenantConfig::default()).unwrap();

    let (plan, outcomes) = submit_statement(
        &mut svc,
        "a",
        "SELECT count(), mean(d1) WHERE d0 IN [0.0, 10.0]",
    )
    .unwrap();
    assert_eq!(plan.aggregates.len(), 2);
    assert_eq!(outcomes.len(), 2);

    for stmt in [
        "SELECT count() EXPLAIN",
        "SELECT count() WITH MODE exact",
        "SELECT count() WITH MODE predict",
    ] {
        let err = submit_statement(&mut svc, "a", stmt)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("tenant statements must not carry EXPLAIN or WITH MODE"),
            "unexpected error for {stmt:?}: {err}"
        );
    }
}

#[test]
fn parse_errors_surface_with_their_rendering() {
    let cluster = cluster();
    let mut front = Frontend::new(Executor::new(&cluster), "t").unwrap();
    let err = front.run("SELECT frob(d0)").unwrap_err().to_string();
    assert!(err.contains("expected aggregate function, found `frob`"));
    assert!(err.contains("^^^^"), "rendered span missing: {err}");
    // Well-formed statement over a dimension the table lacks: a planning
    // error, not a parse error.
    let err = front.run("SELECT mean(d7)").unwrap_err().to_string();
    assert!(parse("SELECT mean(d7)").is_ok());
    assert!(
        err.contains("out of range") || err.contains("dimension"),
        "{err}"
    );
}
