//! Golden tests for parser error messages: the full span-annotated
//! rendering is asserted verbatim, so any change to wording, spans, or
//! caret layout is caught here (and must be mirrored in the error
//! catalog of `docs/QUERYLANG.md`, which `doc_examples.rs` re-asserts).

use sea_lang::parse;

fn rendered(stmt: &str) -> String {
    parse(stmt).unwrap_err().to_string()
}

#[test]
fn unknown_aggregate() {
    assert_eq!(
        rendered("SELECT frob(d0)"),
        "parse error at 7..11: expected aggregate function, found `frob`\n\
         \x20 SELECT frob(d0)\n\
         \x20        ^^^^"
    );
}

#[test]
fn count_with_arguments() {
    assert_eq!(
        rendered("SELECT count(d0)"),
        "parse error at 13..15: count() takes no arguments\n\
         \x20 SELECT count(d0)\n\
         \x20              ^^"
    );
}

#[test]
fn bad_dimension() {
    assert_eq!(
        rendered("SELECT mean(width)"),
        "parse error at 12..17: expected a dimension like `d0`, found `width`\n\
         \x20 SELECT mean(width)\n\
         \x20             ^^^^^"
    );
}

#[test]
fn quantile_out_of_range() {
    assert_eq!(
        rendered("SELECT quantile(d0, 1.5)"),
        "parse error at 20..23: quantile level must be within [0, 1], got 1.5\n\
         \x20 SELECT quantile(d0, 1.5)\n\
         \x20                     ^^^"
    );
}

#[test]
fn empty_range() {
    assert_eq!(
        rendered("SELECT count() WHERE d0 IN [9.0, 2.0]"),
        "parse error at 27..37: empty range: lower bound 9.0 exceeds upper bound 2.0\n\
         \x20 SELECT count() WHERE d0 IN [9.0, 2.0]\n\
         \x20                            ^^^^^^^^^^"
    );
}

#[test]
fn duplicate_range_dimension() {
    assert_eq!(
        rendered("SELECT count() WHERE d0 IN [0.0, 1.0] AND d0 IN [2.0, 3.0]"),
        "parse error at 42..58: duplicate range predicate for `d0`\n\
         \x20 SELECT count() WHERE d0 IN [0.0, 1.0] AND d0 IN [2.0, 3.0]\n\
         \x20                                           ^^^^^^^^^^^^^^^^"
    );
}

#[test]
fn mixed_box_and_ball() {
    assert_eq!(
        rendered("SELECT count() WHERE d0 IN [0.0, 1.0] AND WITHIN BALL((5.0, 5.0), 2.0)"),
        "parse error at 42..70: range and ball predicates cannot be combined: \
         a selection is one box or one ball\n\
         \x20 SELECT count() WHERE d0 IN [0.0, 1.0] AND WITHIN BALL((5.0, 5.0), 2.0)\n\
         \x20                                           ^^^^^^^^^^^^^^^^^^^^^^^^^^^^"
    );
}

#[test]
fn negative_radius() {
    assert_eq!(
        rendered("SELECT count() WHERE WITHIN BALL((5.0, 5.0), -2.0)"),
        "parse error at 45..49: ball radius must be positive, got -2.0\n\
         \x20 SELECT count() WHERE WITHIN BALL((5.0, 5.0), -2.0)\n\
         \x20                                              ^^^^"
    );
}

#[test]
fn unknown_mode() {
    assert_eq!(
        rendered("SELECT count() WITH MODE turbo"),
        "parse error at 25..30: expected a query mode: `exact`, `predict`, or `auto`, \
         found `turbo`\n\
         \x20 SELECT count() WITH MODE turbo\n\
         \x20                          ^^^^^"
    );
}

#[test]
fn truncated_statement_points_past_the_end() {
    assert_eq!(
        rendered("SELECT mean(d0"),
        "parse error at 14..14: expected `)`, found end of statement\n\
         \x20 SELECT mean(d0\n\
         \x20               ^"
    );
}

#[test]
fn trailing_garbage() {
    assert_eq!(
        rendered("SELECT count() EXPLAIN banana"),
        "parse error at 23..29: unexpected trailing input starting at `banana`\n\
         \x20 SELECT count() EXPLAIN banana\n\
         \x20                        ^^^^^^"
    );
}
