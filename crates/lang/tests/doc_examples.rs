//! CI enforcement for `docs/QUERYLANG.md`: every fenced ```sea block
//! must parse, and every ```sea-error block (first line = statement,
//! remaining lines = expected rendering) must reproduce its error
//! byte-for-byte. The language reference cannot drift from the parser.

use std::path::PathBuf;

use sea_lang::parse;

fn querylang_md() -> String {
    let path: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "..",
        "..",
        "docs",
        "QUERYLANG.md",
    ]
    .iter()
    .collect();
    std::fs::read_to_string(&path).expect("docs/QUERYLANG.md exists")
}

/// Extracts the bodies of fenced code blocks with the exact info string
/// `lang` from `text`.
fn fenced_blocks(text: &str, lang: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<Vec<&str>> = None;
    for line in text.lines() {
        match &mut current {
            None if line.trim() == format!("```{lang}") => current = Some(Vec::new()),
            None => {}
            Some(body) => {
                if line.trim() == "```" {
                    blocks.push(body.join("\n"));
                    current = None;
                } else {
                    body.push(line);
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```{lang} block");
    blocks
}

#[test]
fn every_sea_block_parses() {
    let doc = querylang_md();
    let blocks = fenced_blocks(&doc, "sea");
    assert!(
        blocks.len() >= 10,
        "expected the reference to cover at least 10 statement examples, found {}",
        blocks.len()
    );
    for block in &blocks {
        for stmt in block
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("--"))
        {
            if let Err(e) = parse(stmt) {
                panic!("QUERYLANG.md example failed to parse:\n{e}");
            }
        }
    }
}

#[test]
fn every_sea_error_block_reproduces_its_rendering() {
    let doc = querylang_md();
    let blocks = fenced_blocks(&doc, "sea-error");
    assert!(
        blocks.len() >= 8,
        "expected the error catalog to cover at least 8 errors, found {}",
        blocks.len()
    );
    for block in &blocks {
        let (stmt, expected) = block
            .split_once('\n')
            .expect("sea-error block: statement line then rendering");
        let err = parse(stmt).unwrap_err().to_string();
        assert_eq!(
            err, expected,
            "QUERYLANG.md error rendering drifted for {stmt:?}"
        );
    }
}

#[test]
fn canonical_prints_in_examples_are_fixed_points() {
    // Examples written in canonical form should re-print identically —
    // keeps the doc's spelling aligned with what users see echoed back.
    let doc = querylang_md();
    for block in fenced_blocks(&doc, "sea") {
        for stmt in block
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("--"))
        {
            let plan = parse(stmt).unwrap();
            let printed = plan.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(plan, reparsed, "round trip failed for {stmt:?}");
        }
    }
}
