//! Golden-file test for the EXPLAIN renderer: the full report for a
//! fixed statement over a fixed cluster is pinned byte-for-byte. Every
//! number in the report is simulated (cost-model microseconds and span
//! `sim_us`), so the rendering is machine-independent and identical at
//! any `SEA_EXEC_THREADS` setting — which is exactly what makes a golden
//! test meaningful here.
//!
//! To regenerate after an intentional format change:
//! `UPDATE_GOLDEN=1 cargo test -p sea-lang --test explain_golden`

use std::path::PathBuf;

use sea_common::Record;
use sea_lang::Frontend;
use sea_query::Executor;
use sea_storage::{Partitioning, StorageCluster};

fn check_against_fixture(rendered: &str, fixture: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", fixture]
        .iter()
        .collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {fixture} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        rendered, expected,
        "{fixture} drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// 2-D grid over [0, 100)²: d0 = i % 100, d1 = i / 100.
fn cluster() -> StorageCluster {
    let mut cluster = StorageCluster::new(4, 128);
    let records: Vec<Record> = (0..10_000)
        .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
        .collect();
    cluster
        .load_table("t", records, Partitioning::Hash)
        .unwrap();
    cluster
}

#[test]
fn explain_report_matches_golden_fixture() {
    let cluster = cluster();
    let mut front = Frontend::new(Executor::new(&cluster), "t").unwrap();
    let out = front
        .run("SELECT count(), mean(d0) WHERE d0 IN [20.0, 60.0] AND d1 IN [10.0, 30.0] EXPLAIN")
        .unwrap();
    check_against_fixture(out.explain.as_deref().unwrap(), "explain_plain.txt");
}

#[test]
fn explain_with_engines_matches_golden_fixture() {
    let cluster = cluster();
    let mut front = Frontend::new(Executor::new(&cluster), "t")
        .unwrap()
        .with_engines(10)
        .unwrap();
    // Narrow box so the decision section shows the index winning.
    let out = front
        .run("SELECT count() WHERE d0 IN [4.0, 6.0] AND d1 IN [4.0, 6.0] EXPLAIN")
        .unwrap();
    check_against_fixture(out.explain.as_deref().unwrap(), "explain_engines.txt");
}

#[test]
fn explain_answers_match_the_unexplained_statement() {
    let cluster = cluster();
    let mut front = Frontend::new(Executor::new(&cluster), "t").unwrap();
    let plain = front
        .run("SELECT count(), mean(d0) WHERE d0 IN [20.0, 60.0]")
        .unwrap();
    let explained = front
        .run("SELECT count(), mean(d0) WHERE d0 IN [20.0, 60.0] EXPLAIN")
        .unwrap();
    for (p, e) in plain.results.iter().zip(&explained.results) {
        assert_eq!(p.answer, e.answer, "EXPLAIN must not change answers");
    }
}
