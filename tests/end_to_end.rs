//! End-to-end integration: generated data → simulated cluster → exact
//! engines → trained agent → comparisons against every baseline — the
//! whole Fig-2 loop spanning all workspace crates.

use sea_baselines::{LearnedAqp, SamplingAqp};
use sea_common::{AggregateKind, Rect};
use sea_core::{AgentConfig, AgentPipeline, AnswerSource, ExecMode};
use sea_query::Executor;
use sea_storage::{Partitioning, StorageCluster};
use sea_workload::{DataGenerator, DataSpec, QueryGenerator, QuerySpec};

fn setup() -> (StorageCluster, QueryGenerator) {
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
    let data = DataGenerator::new(DataSpec::Uniform { domain }, 99)
        .generate(120_000)
        .unwrap();
    let mut cluster = StorageCluster::new(8, 512);
    cluster.load_table("t", data, Partitioning::Hash).unwrap();
    let spec = QuerySpec::simple_count(vec![50.0, 50.0], 4.0, (5.0, 15.0)).unwrap();
    let gen = QueryGenerator::new(spec, 7).unwrap();
    (cluster, gen)
}

#[test]
fn agent_pipeline_full_loop() {
    let (cluster, mut gen) = setup();
    let exec = Executor::new(&cluster);
    let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)
        .unwrap()
        .with_refresh_every(16);

    let mut predicted = 0usize;
    let mut exact = 0usize;
    let mut total_rel = 0.0;
    let mut exact_cost = 0.0;
    let mut agent_cost = 0.0;
    for _ in 0..300 {
        let q = gen.next_query();
        let Ok(truth) = exec.execute_direct("t", &q) else {
            continue;
        };
        let out = pipe.process(&exec, &q).unwrap();
        total_rel += out.answer.relative_error(&truth.answer);
        exact_cost += truth.cost.wall_us;
        agent_cost += out.cost.wall_us;
        match out.source {
            AnswerSource::Predicted { .. } => predicted += 1,
            AnswerSource::Exact => exact += 1,
            AnswerSource::Degraded { .. } => panic!("no faults injected"),
            AnswerSource::Cached => panic!("no cache attached"),
        }
    }
    assert!(predicted > 200, "mostly data-less: {predicted}");
    assert!(exact > 5, "training happened: {exact}");
    let mean_rel = total_rel / 300.0;
    assert!(mean_rel < 0.1, "end-to-end accuracy: {mean_rel}");
    assert!(
        agent_cost * 3.0 < exact_cost,
        "agent saves most of the cost: {agent_cost} vs {exact_cost}"
    );
}

#[test]
fn agent_beats_baselines_on_storage_at_similar_accuracy() {
    let (cluster, mut gen) = setup();
    let exec = Executor::new(&cluster);
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();

    // Train the agent on 200 queries.
    let mut agent = sea_core::SeaAgent::new(2, AgentConfig::default()).unwrap();
    for _ in 0..200 {
        let q = gen.next_query();
        if let Ok(exact) = exec.execute_direct("t", &q) {
            agent.train(&q, &exact.answer).unwrap();
        }
    }
    // Baselines.
    let sample = SamplingAqp::build(&cluster, "t", domain.clone(), 8, 64, 3).unwrap();
    let mut dbl = LearnedAqp::new(
        SamplingAqp::build(&cluster, "t", domain, 8, 64, 5).unwrap(),
        5,
    )
    .unwrap();
    let mut observe_gen = gen.clone();
    for _ in 0..50 {
        let q = observe_gen.next_query();
        if let Ok(exact) = exec.execute_direct("t", &q) {
            let _ = dbl.observe(&q, &exact.answer);
        }
    }

    // Accuracy on 50 fresh probes.
    let mut probe_gen = QueryGenerator::new(
        QuerySpec::simple_count(vec![50.0, 50.0], 4.0, (5.0, 15.0)).unwrap(),
        1234,
    )
    .unwrap();
    let mut agent_err = 0.0;
    let mut sample_err = 0.0;
    let mut n = 0;
    for _ in 0..50 {
        let q = probe_gen.next_query();
        let Ok(truth) = exec.execute_direct("t", &q) else {
            continue;
        };
        if let (Ok(a), Ok(s)) = (agent.predict(&q), sample.query(&q)) {
            agent_err += a.answer.relative_error(&truth.answer);
            sample_err += s.answer.relative_error(&truth.answer);
            n += 1;
        }
    }
    assert!(n > 40);
    let agent_err = agent_err / n as f64;
    let sample_err = sample_err / n as f64;
    // Comparable (or better) accuracy at a fraction of the storage.
    assert!(
        agent_err < sample_err + 0.05,
        "agent {agent_err} vs sample {sample_err}"
    );
    assert!(
        agent.stats().memory_bytes * 2 < sample.storage_bytes(),
        "agent {} bytes vs sample {} bytes",
        agent.stats().memory_bytes,
        sample.storage_bytes()
    );
    assert!(agent.stats().memory_bytes < dbl.storage_bytes());
}

#[test]
fn all_aggregates_roundtrip_through_the_pipeline() {
    let domain = Rect::new(vec![0.0, 0.0, 0.0], vec![100.0; 3]).unwrap();
    let data = DataGenerator::new(DataSpec::Uniform { domain }, 11)
        .generate(50_000)
        .unwrap();
    let mut cluster = StorageCluster::new(4, 512);
    cluster.load_table("t", data, Partitioning::Hash).unwrap();
    let exec = Executor::new(&cluster);

    for agg in [
        AggregateKind::Count,
        AggregateKind::Sum { dim: 1 },
        AggregateKind::Mean { dim: 2 },
        AggregateKind::Variance { dim: 0 },
        AggregateKind::Min { dim: 1 },
        AggregateKind::Max { dim: 2 },
        AggregateKind::Median { dim: 0 },
        AggregateKind::Quantile { dim: 1, q: 0.9 },
        AggregateKind::Correlation { x: 0, y: 1 },
        AggregateKind::Regression { x: 0, y: 2 },
    ] {
        let mut spec = QuerySpec::simple_count(vec![50.0; 3], 3.0, (15.0, 25.0)).unwrap();
        spec.aggregates = vec![agg];
        let mut gen = QueryGenerator::new(spec, 17).unwrap();
        let mut agent = sea_core::SeaAgent::new(3, AgentConfig::default()).unwrap();
        let mut trained = 0;
        for _ in 0..60 {
            let q = gen.next_query();
            if let Ok(exact) = exec.execute_direct("t", &q) {
                agent.train(&q, &exact.answer).unwrap();
                trained += 1;
            }
        }
        assert!(trained > 40, "{agg:?} trained {trained}");
        let probe = gen.next_query();
        let truth = exec.execute_direct("t", &probe);
        let pred = agent.predict(&probe);
        if let (Ok(t), Ok(p)) = (truth, pred) {
            let rel = p.answer.relative_error(&t.answer);
            // Min/Max/medians of uniform data are easy; correlations of
            // independent attributes hover near 0 where relative error is
            // ill-conditioned — just require the prediction to exist and
            // be finite for those.
            match agg {
                AggregateKind::Correlation { .. } => {
                    assert!(p.answer.as_scalar().unwrap().abs() <= 1.0)
                }
                AggregateKind::Regression { .. } => {
                    assert!(p.answer.as_pair().is_some())
                }
                _ => assert!(rel < 0.6, "{agg:?} rel {rel}"),
            }
        }
    }
}
