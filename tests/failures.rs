//! Failure-injection integration tests: the operators keep answering —
//! exactly — through single-node failures when replication is on, and
//! fail loudly (never silently wrong) when it is not.

use sea_common::{AggregateKind, AnalyticalQuery, CostModel, Point, Record, Rect, Region};
use sea_knn::{mapreduce_knn, DistributedKnnIndex};
use sea_query::Executor;
use sea_storage::{Partitioning, StorageCluster};

fn records(n: u64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
        .collect()
}

fn count_query(e: f64) -> AnalyticalQuery {
    AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![50.0, 40.0]), &[e, e]).unwrap()),
        AggregateKind::Count,
    )
}

#[test]
fn exact_queries_survive_node_failure_with_replication() {
    let mut cluster = StorageCluster::with_replication(6, 256);
    cluster
        .load_table("t", records(30_000), Partitioning::Hash)
        .unwrap();
    let q = count_query(12.0);
    let before = {
        let exec = Executor::new(&cluster);
        exec.execute_direct("t", &q).unwrap().answer
    };
    for victim in 0..6 {
        cluster.fail_node(victim).unwrap();
        {
            let exec = Executor::new(&cluster);
            let bdas = exec.execute_bdas("t", &q).unwrap().answer;
            let direct = exec.execute_direct("t", &q).unwrap().answer;
            assert_eq!(bdas, before, "BDAS answer intact with node {victim} down");
            assert_eq!(
                direct, before,
                "direct answer intact with node {victim} down"
            );
        }
        cluster.restore_node(victim).unwrap();
    }
}

#[test]
fn unreplicated_failure_is_loud_not_wrong() {
    let mut cluster = StorageCluster::new(4, 256);
    cluster
        .load_table("t", records(10_000), Partitioning::Hash)
        .unwrap();
    cluster.fail_node(2).unwrap();
    let exec = Executor::new(&cluster);
    // The query spans all hash partitions, so execution must error rather
    // than return a partial (silently wrong) count.
    assert!(exec.execute_bdas("t", &count_query(12.0)).is_err());
    assert!(exec.execute_direct("t", &count_query(12.0)).is_err());
}

#[test]
fn knn_operators_survive_failover() {
    let mut cluster = StorageCluster::with_replication(6, 256);
    cluster
        .load_table("t", records(20_000), Partitioning::Hash)
        .unwrap();
    let model = CostModel::default();
    let q = Point::new(vec![42.0, 37.0]);
    let want: Vec<f64> = mapreduce_knn(&cluster, "t", &q, 10, &model)
        .unwrap()
        .neighbors
        .iter()
        .map(|n| n.distance)
        .collect();

    cluster.fail_node(3).unwrap();
    // MapReduce path reads through replicas transparently.
    let got: Vec<f64> = mapreduce_knn(&cluster, "t", &q, 10, &model)
        .unwrap()
        .neighbors
        .iter()
        .map(|n| n.distance)
        .collect();
    assert_eq!(want, got, "kNN distances unchanged through failover");

    // A cohort index *built* during the failure also answers correctly
    // (it reads partition 3's data from the replica on node 4).
    let index = DistributedKnnIndex::build(&cluster, "t", &model).unwrap();
    let cohort: Vec<f64> = index
        .query(&q, 10, &model)
        .unwrap()
        .neighbors
        .iter()
        .map(|n| n.distance)
        .collect();
    assert_eq!(want, cohort);
}

#[test]
fn agent_pipeline_rides_through_failover() {
    use sea_core::{AgentConfig, AgentPipeline, ExecMode};
    let mut cluster = StorageCluster::with_replication(4, 256);
    cluster
        .load_table("t", records(20_000), Partitioning::Hash)
        .unwrap();
    let mut pipe =
        AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct).unwrap();
    // Train while healthy.
    {
        let exec = Executor::new(&cluster);
        for i in 0..120 {
            let q = count_query(5.0 + (i % 15) as f64 * 0.5);
            let _ = pipe.process(&exec, &q);
        }
    }
    // Fail a node: predictions never touch the cluster, and audits /
    // fallbacks are served by replicas — the pipeline stays correct.
    cluster.fail_node(1).unwrap();
    let exec = Executor::new(&cluster);
    let mut checked = 0;
    for i in 0..40 {
        let q = count_query(5.0 + (i % 15) as f64 * 0.5);
        let out = pipe.process(&exec, &q).unwrap();
        let truth = exec.execute_direct("t", &q).unwrap().answer;
        assert!(
            out.answer.relative_error(&truth) < 0.2,
            "answer ok during failure: {:?} vs {:?}",
            out.answer,
            truth
        );
        checked += 1;
    }
    assert_eq!(checked, 40);
}
