//! Integration tests of the maintenance story across crates: data updates
//! propagate through storage into the agent; drifting workloads keep the
//! pipeline accurate; the geo deployment composes with all of it.

use sea_common::{AggregateKind, AnalyticalQuery, Point, Rect, Region};
use sea_core::{AgentConfig, AgentPipeline, ExecMode};
use sea_geo::{GeoConfig, GeoSystem};
use sea_query::Executor;
use sea_storage::{Partitioning, StorageCluster};
use sea_workload::{
    DataGenerator, DataSpec, DriftKind, DriftingWorkload, QueryGenerator, QuerySpec,
};

fn cluster(seed: u64) -> StorageCluster {
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
    let data = DataGenerator::new(DataSpec::Uniform { domain }, seed)
        .generate(80_000)
        .unwrap();
    let mut c = StorageCluster::new(8, 512);
    c.load_table("t", data, Partitioning::Hash).unwrap();
    c
}

fn count_query(cx: f64, cy: f64, e: f64) -> AnalyticalQuery {
    AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![cx, cy]), &[e, e]).unwrap()),
        AggregateKind::Count,
    )
}

#[test]
fn deletes_then_invalidation_restore_accuracy() {
    let mut c = cluster(3);
    // Train.
    let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)
        .unwrap()
        .with_refresh_every(0);
    {
        let exec = Executor::new(&c);
        for i in 0..200 {
            let q = count_query(50.0, 50.0, 6.0 + (i % 15) as f64 * 0.5);
            let _ = pipe.process(&exec, &q).unwrap();
        }
    }
    // Delete most of the hotspot's records.
    let hole = Rect::new(vec![42.0, 42.0], vec![58.0, 58.0]).unwrap();
    let removed = c.delete_region("t", &hole).unwrap();
    assert!(removed > 1_500, "big delete: {removed}");

    let exec = Executor::new(&c);
    let probe = count_query(50.0, 50.0, 7.0);
    let truth = exec.execute_direct("t", &probe).unwrap().answer;

    // Stale model drastically overestimates.
    let stale_out = pipe.process(&exec, &probe).unwrap();
    let stale_err = stale_out.answer.relative_error(&truth);

    // Invalidate and re-probe: the pipeline escalates to exact execution
    // and relearns, so the error falls back to ~0.
    pipe.agent_mut().invalidate_region(&hole).unwrap();
    let fresh_out = pipe.process(&exec, &probe).unwrap();
    let fresh_err = fresh_out.answer.relative_error(&truth);
    assert!(
        fresh_err < stale_err / 2.0 || fresh_err < 0.01,
        "stale {stale_err} vs fresh {fresh_err}"
    );
}

#[test]
fn drifting_workload_stays_accurate_with_maintenance() {
    let c = cluster(5);
    let exec = Executor::new(&c);
    let spec = QuerySpec::simple_count(vec![25.0, 25.0], 2.0, (5.0, 12.0)).unwrap();
    let gen = QueryGenerator::new(spec, 13).unwrap();
    let mut workload = DriftingWorkload::new(
        gen,
        DriftKind::Linear {
            velocity: vec![0.08, 0.08], // ~40 units over 500 queries
        },
    );
    let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)
        .unwrap()
        .with_refresh_every(12);
    let mut tail_err = 0.0;
    let mut tail_n = 0;
    for step in 0..500 {
        let q = workload.next_query().unwrap();
        let Ok(truth) = exec.execute_direct("t", &q) else {
            continue;
        };
        let out = pipe.process(&exec, &q).unwrap();
        if step >= 400 {
            tail_err += out.answer.relative_error(&truth.answer);
            tail_n += 1;
        }
    }
    // Periodically purge quanta the drift abandoned.
    // The quantizer clock advances once per *training* (exact) query,
    // so the age bound is small relative to the 500-query stream.
    let purged = pipe.agent_mut().purge_stale(30);
    let tail_mean = tail_err / tail_n as f64;
    assert!(tail_mean < 0.12, "tracking drift: {tail_mean}");
    // Drift across 40 units with spawn distance 10 must have spawned and
    // abandoned several quanta.
    assert!(purged >= 1, "stale quanta purged: {purged}");
}

#[test]
fn geo_system_survives_data_updates() {
    let mut c = cluster(7);
    // Pre-train the deployment.
    {
        let mut geo = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
        for i in 0..150 {
            let q = count_query(50.0, 50.0, 5.0 + (i % 12) as f64 * 0.5);
            geo.submit(0, &q).unwrap();
        }
        assert!(geo.stats().fallback_rate() < 0.5);
    } // geo borrows end here
      // Update the data: double the density in the hotspot.
    let extra = DataGenerator::new(
        DataSpec::Uniform {
            domain: Rect::new(vec![40.0, 40.0], vec![60.0, 60.0]).unwrap(),
        },
        11,
    )
    .generate(30_000)
    .unwrap();
    let extra: Vec<_> = extra
        .into_iter()
        .enumerate()
        .map(|(i, mut r)| {
            r.id = 500_000 + i as u64;
            r
        })
        .collect();
    c.insert("t", extra).unwrap();

    // A fresh deployment over the updated cluster reconverges.
    let mut geo = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
    let exec = Executor::new(&c);
    for i in 0..150 {
        let q = count_query(50.0, 50.0, 5.0 + (i % 12) as f64 * 0.5);
        geo.submit(0, &q).unwrap();
    }
    let probe = count_query(50.0, 50.0, 6.3);
    let truth = exec.execute_direct("t", &probe).unwrap().answer;
    let out = geo.submit(0, &probe).unwrap();
    assert!(
        out.answer.relative_error(&truth) < 0.15,
        "geo answers track updated data: {:?} vs {truth:?}",
        out.answer
    );
}
