//! Property-based cross-engine consistency: for arbitrary selection
//! regions and aggregates, every exact engine (BDAS, direct, index-fetch)
//! must return the same answer as the in-memory oracle, and every access
//! structure must agree with brute force.

use proptest::prelude::*;

use sea_common::{
    AggregateKind, AnalyticalQuery, AnswerValue, CostModel, Point, Record, Rect, Region,
};
use sea_index::{GridIndex, KdTree, RTree};
use sea_optimizer::{ExecutionEngines, QueryStrategy};
use sea_query::Executor;
use sea_storage::{Partitioning, StorageCluster};

/// A deterministic, modest dataset shared by the properties.
fn dataset() -> Vec<Record> {
    (0u64..4_000)
        .map(|i| {
            let x = (i % 200) as f64 / 2.0;
            let y = ((i.wrapping_mul(2654435761)) % 1000) as f64 / 10.0;
            Record::new(i, vec![x, y])
        })
        .collect()
}

fn cluster() -> StorageCluster {
    let mut c = StorageCluster::new(4, 64);
    c.load_table("t", dataset(), Partitioning::Hash).unwrap();
    c
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..90.0, 0.0f64..90.0, 1.0f64..40.0, 1.0f64..40.0)
        .prop_map(|(lx, ly, w, h)| Rect::new(vec![lx, ly], vec![lx + w, ly + h]).unwrap())
}

fn arb_aggregate() -> impl Strategy<Value = AggregateKind> {
    prop_oneof![
        Just(AggregateKind::Count),
        Just(AggregateKind::Sum { dim: 0 }),
        Just(AggregateKind::Mean { dim: 1 }),
        Just(AggregateKind::Variance { dim: 0 }),
        Just(AggregateKind::Min { dim: 1 }),
        Just(AggregateKind::Max { dim: 0 }),
        Just(AggregateKind::Median { dim: 1 }),
        Just(AggregateKind::Correlation { x: 0, y: 1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_engines_agree_with_oracle(rect in arb_rect(), agg in arb_aggregate()) {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = AnalyticalQuery::new(Region::Range(rect), agg);
        let oracle = q.answer_exact(&dataset());
        let bdas = exec.execute_bdas("t", &q);
        let direct = exec.execute_direct("t", &q);
        match oracle {
            Ok(want) => {
                let b = bdas.unwrap().answer;
                let d = direct.unwrap().answer;
                prop_assert!(b.relative_error(&want) < 1e-9, "bdas {b:?} vs {want:?}");
                prop_assert!(d.relative_error(&want) < 1e-9, "direct {d:?} vs {want:?}");
            }
            Err(_) => {
                prop_assert!(bdas.is_err(), "bdas should fail when oracle fails");
                prop_assert!(direct.is_err());
            }
        }
    }

    #[test]
    fn optimizer_strategies_agree(rect in arb_rect()) {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let engines = ExecutionEngines::build(&c, "t", domain, 40).unwrap();
        let model = CostModel::default();
        let q = AnalyticalQuery::new(Region::Range(rect), AggregateKind::Count);
        let scan = engines.execute(QueryStrategy::ScanAggregate, &q, &model).unwrap();
        let index = engines.execute(QueryStrategy::IndexFetch, &q, &model).unwrap();
        prop_assert_eq!(scan.answer, index.answer);
    }

    #[test]
    fn kdtree_range_matches_filter(rect in arb_rect()) {
        let records = dataset();
        let tree = KdTree::build(&records).unwrap();
        let (mut got, _) = tree.range(&rect).unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = records
            .iter()
            .filter(|r| rect.contains(&r.to_point()))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_knn_matches_brute_force(x in 0.0f64..100.0, y in 0.0f64..100.0, k in 1usize..40) {
        let records = dataset();
        let tree = KdTree::build(&records).unwrap();
        let q = Point::new(vec![x, y]);
        let hits = tree.nearest(&q, k).unwrap();
        let mut brute: Vec<f64> = records
            .iter()
            .map(|r| q.distance(&r.to_point()).unwrap())
            .collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (h, want) in hits.iter().zip(&brute) {
            prop_assert!((h.distance - want).abs() < 1e-9);
        }
    }

    #[test]
    fn grid_candidates_are_a_superset_of_matches(rect in arb_rect()) {
        let records = dataset();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let grid = GridIndex::build(domain, 20, &records).unwrap();
        let candidates = grid.candidates(&rect).unwrap();
        for r in &records {
            if rect.contains(&r.to_point()) {
                prop_assert!(
                    candidates.contains(&r.id),
                    "record {} in region but not a candidate",
                    r.id
                );
            }
        }
    }

    #[test]
    fn rtree_search_matches_linear_scan(rect in arb_rect()) {
        let entries: Vec<(Rect, u64)> = dataset()
            .iter()
            .map(|r| {
                let p = r.to_point();
                (
                    Rect::new(
                        vec![p.coord(0), p.coord(1)],
                        vec![p.coord(0) + 0.5, p.coord(1) + 0.5],
                    )
                    .unwrap(),
                    r.id,
                )
            })
            .collect();
        let tree = RTree::build(entries.clone()).unwrap();
        let mut got: Vec<u64> = tree.search(&rect).unwrap().into_iter().map(|(_, id)| id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = entries
            .iter()
            .filter(|(r, _)| r.intersects(&rect))
            .map(|(_, id)| *id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn partial_aggregation_is_partition_invariant(rect in arb_rect(), parts in 1usize..7) {
        // Splitting the records into any number of partitions and merging
        // partial bivariate stats must equal the single-pass result.
        let records = dataset();
        let selected: Vec<&Record> = records
            .iter()
            .filter(|r| rect.contains(&r.to_point()))
            .collect();
        prop_assume!(selected.len() >= 2);
        let whole = sea_common::BivariateStats::from_records(selected.iter().copied(), 0, 1);
        let mut merged = sea_common::BivariateStats::default();
        for chunk in selected.chunks(selected.len().div_ceil(parts)) {
            let partial = sea_common::BivariateStats::from_records(chunk.iter().copied(), 0, 1);
            merged.merge(&partial);
        }
        prop_assert_eq!(whole.n, merged.n);
        prop_assert!((whole.sum_xy - merged.sum_xy).abs() < 1e-6);
        match (whole.correlation(), merged.correlation()) {
            (Ok(a), Ok(b)) => prop_assert!((a - b).abs() < 1e-9),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "divergent: {other:?}"),
        }
    }

    #[test]
    fn answers_survive_region_embedding(rect in arb_rect()) {
        // to_query_vector ∘ Rect::centered must be the identity on
        // (centre, extents) — the agent's feature map must not distort
        // query geometry.
        let q = AnalyticalQuery::new(Region::Range(rect.clone()), AggregateKind::Count);
        let v = q.to_query_vector();
        let rebuilt = Rect::centered(&Point::new(v[..2].to_vec()), &v[2..4]).unwrap();
        for d in 0..2 {
            prop_assert!((rebuilt.lo()[d] - rect.lo()[d]).abs() < 1e-9);
            prop_assert!((rebuilt.hi()[d] - rect.hi()[d]).abs() < 1e-9);
        }
        let _ = AnswerValue::Scalar(0.0);
    }
}
