#!/usr/bin/env bash
# Determinism lint: the answer path must never read a wall clock or an
# unseeded RNG. Every simulated cost, window boundary, SLO burn rate,
# and anomaly score is derived from the simulated clock, so a single
# `Instant::now()` on the wrong path silently breaks bit-identical
# replay across `SEA_EXEC_THREADS` settings.
#
# Scans every crate's src/ for forbidden APIs and fails if a hit is not
# covered by ci/determinism_allowlist.txt. Run from the repo root:
#
#   ci/determinism_lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

ALLOWLIST=ci/determinism_allowlist.txt

# Forbidden on the answer path: wall clocks and ambient RNG. `Date::now`
# covers any future JS/WASM bindings; seeded StdRng construction is fine
# but only inside allowlisted generator files.
PATTERN='std::time::Instant|Instant::now|SystemTime|rand::|Date::now'

allowed() {
    # Exact repo-relative path match, ignoring comments and blanks.
    grep -vE '^\s*(#|$)' "$ALLOWLIST" | grep -qxF "$1"
}

status=0
while IFS= read -r file; do
    if ! allowed "$file"; then
        echo "determinism-lint: forbidden wall-clock/RNG API in $file:" >&2
        grep -nE "$PATTERN" "$file" | head -5 >&2
        status=1
    fi
done < <(grep -rlE "$PATTERN" crates/*/src --include='*.rs' | sort)

# A stale allowlist hides future violations behind dead entries.
while IFS= read -r entry; do
    if [ ! -f "$entry" ]; then
        echo "determinism-lint: allowlist entry no longer exists: $entry" >&2
        status=1
    elif ! grep -qE "$PATTERN" "$entry"; then
        echo "determinism-lint: allowlist entry has no forbidden API (remove it): $entry" >&2
        status=1
    fi
done < <(grep -vE '^\s*(#|$)' "$ALLOWLIST")

if [ "$status" -eq 0 ]; then
    echo "determinism-lint: answer path is wall-clock and RNG free"
fi
exit "$status"
