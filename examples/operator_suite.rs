//! Big-data-less operators (principle P3): rank-join, distributed kNN,
//! and missing-value imputation — each run both the MapReduce way and the
//! surgical way, printing the measured resource gap.
//!
//! ```text
//! cargo run -p sea-bench --release --example operator_suite
//! ```

use sea_common::{CostMeter, CostModel, Point, Record, Rect};
use sea_imputation::{fullscan_impute, GridImputer};
use sea_knn::{knn_join, mapreduce_knn, DistributedKnnIndex};
use sea_rankjoin::{mapreduce_rank_join, surgical_rank_join, ScoreIndex};
use sea_storage::{Partitioning, StorageCluster};

fn main() -> sea_common::Result<()> {
    let model = CostModel::default();

    // ---- Rank-join -------------------------------------------------------
    let mut cluster = StorageCluster::new(8, 512);
    let score =
        |i: u64, salt: u64| ((i.wrapping_mul(2654435761).wrapping_add(salt)) % 10_000) as f64;
    let n = 100_000u64;
    let left: Vec<Record> = (0..n)
        .map(|i| Record::new(i, vec![(i % 2000) as f64, score(i, 17), 1.0]))
        .collect();
    let right: Vec<Record> = (0..n)
        .map(|i| Record::new(i, vec![(i % 2000) as f64, score(i, 91), 2.0]))
        .collect();
    cluster.load_table("l", left, Partitioning::Hash)?;
    cluster.load_table("r", right, Partitioning::Hash)?;
    let li = ScoreIndex::build(&cluster, "l", &mut CostMeter::new())?;
    let ri = ScoreIndex::build(&cluster, "r", &mut CostMeter::new())?;
    let surgical = surgical_rank_join(&li, &ri, 10, 256, &model)?;
    let mapreduce = mapreduce_rank_join(&cluster, "l", "r", 10, &model)?;
    println!("rank-join, top-10 of {n} x {n} tuples:");
    println!(
        "  surgical:  {:9.1} ms, {:9} tuples touched, best pair score {:.0}",
        surgical.cost.wall_us / 1e3,
        surgical.tuples_retrieved,
        surgical.results[0].score
    );
    println!(
        "  mapreduce: {:9.1} ms, {:9} tuples touched  →  {:.0}x saved",
        mapreduce.cost.wall_us / 1e3,
        mapreduce.tuples_retrieved,
        mapreduce.cost.wall_us / surgical.cost.wall_us
    );

    // ---- Distributed kNN -------------------------------------------------
    let mut knn_cluster = StorageCluster::new(8, 512);
    let points: Vec<Record> = (0..200_000)
        .map(|i| {
            Record::new(
                i,
                vec![(i % 1000) as f64 / 10.0, (i / 1000) as f64 * 7.3 % 100.0],
            )
        })
        .collect();
    knn_cluster.load_table("pts", points, Partitioning::Hash)?;
    let index = DistributedKnnIndex::build(&knn_cluster, "pts", &model)?;
    let q = Point::new(vec![33.0, 66.0]);
    let cohort = index.query(&q, 10, &model)?;
    let mr = mapreduce_knn(&knn_cluster, "pts", &q, 10, &model)?;
    println!("\nkNN, k=10 over 200k points:");
    println!(
        "  cohort:    {:9.2} ms ({} nodes engaged)",
        cohort.cost.wall_us / 1e3,
        cohort.nodes_engaged
    );
    println!(
        "  mapreduce: {:9.2} ms  →  {:.0}x saved; nearest distance {:.3}",
        mr.cost.wall_us / 1e3,
        mr.cost.wall_us / cohort.cost.wall_us,
        cohort.neighbors[0].distance
    );
    // And a parallel kNN join over 32 probe points.
    let probes: Vec<Point> = (0..32)
        .map(|i| Point::new(vec![i as f64 * 3.0, 50.0]))
        .collect();
    let joined = knn_join(&index, &probes, 5, 8, &model)?;
    println!("  kNN join: {} probes × 5 neighbours each", joined.len());

    // ---- Missing-value imputation ----------------------------------------
    let mut imp_cluster = StorageCluster::new(8, 512);
    let complete: Vec<Record> = (0..100_000)
        .map(|i| {
            let x = (i / 1000) as f64;
            Record::new(i, vec![x, 2.0 * x + 5.0, 100.0 - x])
        })
        .collect();
    imp_cluster.load_table(
        "obs",
        complete,
        Partitioning::Range {
            dim: 0,
            splits: Partitioning::equi_width_splits(0.0, 100.0, 8),
        },
    )?;
    let incomplete: Vec<Record> = (0..30)
        .map(|i| {
            Record::new(
                500_000 + i as u64,
                vec![(3 * i) as f64, f64::NAN, 100.0 - (3 * i) as f64],
            )
        })
        .collect();
    let domain = Rect::new(vec![0.0, 0.0, 0.0], vec![100.0, 205.0, 100.0])?;
    let grid = GridImputer::new(domain, 50)?.impute(&imp_cluster, "obs", &incomplete, 5, &model)?;
    let full = fullscan_impute(&imp_cluster, "obs", &incomplete, 5, &model)?;
    println!("\nmissing-value imputation, 30 incomplete records over 100k:");
    println!(
        "  grid:      {:9.1} ms, {:8} candidates examined",
        grid.cost.wall_us / 1e3,
        grid.candidates_examined
    );
    println!(
        "  fullscan:  {:9.1} ms, {:8} candidates examined  →  {:.0}x saved",
        full.cost.wall_us / 1e3,
        full.candidates_examined,
        full.cost.wall_us / grid.cost.wall_us
    );
    println!(
        "  sample imputed value for x=30: {:.2} (truth {:.2})",
        grid.imputed[10].value(1),
        2.0 * 30.0 + 5.0
    );
    Ok(())
}
