//! Quickstart: load a dataset into the simulated cluster, answer a query
//! exactly, train the SEA agent on a short query stream, and then answer
//! the same kind of query *data-lessly* — comparing cost and accuracy.
//!
//! ```text
//! cargo run -p sea-bench --release --example quickstart
//! ```

use sea_common::{AggregateKind, AnalyticalQuery, Point, Rect, Region};
use sea_core::{AgentConfig, AgentPipeline, AnswerSource, ExecMode};
use sea_query::Executor;
use sea_storage::{Partitioning, StorageCluster};
use sea_workload::{DataGenerator, DataSpec};

fn main() -> sea_common::Result<()> {
    // 1. A 2-D dataset of 200k records, uniform over [0, 100]².
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])?;
    let data = DataGenerator::new(DataSpec::Uniform { domain }, 42).generate(200_000)?;
    let mut cluster = StorageCluster::new(8, 512);
    cluster.load_table("sensors", data, Partitioning::Hash)?;
    println!(
        "loaded {} records on {} nodes",
        cluster.stats("sensors")?.records,
        cluster.num_nodes()
    );

    // 2. One analytical query, answered exactly both ways.
    let query = AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![50.0, 50.0]), &[8.0, 8.0])?),
        AggregateKind::Count,
    );
    let exec = Executor::new(&cluster);
    let bdas = exec.execute_bdas("sensors", &query)?;
    let direct = exec.execute_direct("sensors", &query)?;
    println!(
        "exact count = {:?}; BDAS path {:.1} ms, direct path {:.1} ms",
        bdas.answer,
        bdas.cost.wall_us / 1e3,
        direct.cost.wall_us / 1e3
    );

    // 3. The intelligent agent: the first queries execute exactly and
    //    train it; later queries are answered from models alone.
    let mut pipeline =
        AgentPipeline::new(2, AgentConfig::default(), "sensors", 0.15, ExecMode::Direct)?;
    let mut predicted = 0;
    let mut exact = 0;
    for i in 0..120 {
        let extent = 5.0 + (i % 12) as f64;
        let q = AnalyticalQuery::new(
            Region::Range(Rect::centered(
                &Point::new(vec![50.0, 50.0]),
                &[extent, extent],
            )?),
            AggregateKind::Count,
        );
        match pipeline.process(&exec, &q)?.source {
            AnswerSource::Predicted { .. } => predicted += 1,
            AnswerSource::Exact => exact += 1,
            AnswerSource::Degraded { .. } => unreachable!("no faults injected"),
            AnswerSource::Cached => unreachable!("no cache attached"),
        }
    }
    println!("agent warm-up: {exact} exact executions, then {predicted} data-less answers");

    // 4. A fresh query: predicted answer vs ground truth.
    let probe = AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![50.0, 50.0]), &[9.5, 9.5])?),
        AggregateKind::Count,
    );
    let out = pipeline.process(&exec, &probe)?;
    let truth = exec.execute_direct("sensors", &probe)?.answer;
    println!(
        "probe: predicted {:?}, truth {:?}, rel err {:.4}, cost {:.3} ms",
        out.answer,
        truth,
        out.answer.relative_error(&truth),
        out.cost.wall_us / 1e3
    );
    Ok(())
}
