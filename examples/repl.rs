//! Statement replay: run `sea-lang` statements from a file against a
//! freshly generated cluster, printing each statement's canonical form,
//! answers, and simulated cost — and the full EXPLAIN report for
//! statements that ask for one.
//!
//! ```text
//! cargo run -p sea-bench --release --example repl [-- <statements.sea>]
//! ```
//!
//! With no argument it replays the checked-in E22 workload
//! (`crates/bench/data/e22_replay.sea`). The file format is one
//! statement per line; `--` starts a comment; blank lines are skipped
//! (see docs/QUERYLANG.md for the statement grammar).

use sea_common::Rect;
use sea_lang::Frontend;
use sea_query::Executor;
use sea_storage::{Partitioning, StorageCluster};
use sea_workload::{DataGenerator, DataSpec};

fn main() -> sea_common::Result<()> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/data/e22_replay.sea").to_string());
    let source = std::fs::read_to_string(&path)
        .map_err(|e| sea_common::SeaError::NotFound(format!("{path}: {e}")))?;

    // Same shape as the E22 cluster: 100k uniform records over [0,100]².
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])?;
    let data = DataGenerator::new(DataSpec::Uniform { domain }, 3).generate(100_000)?;
    let mut cluster = StorageCluster::new(8, 512);
    cluster.load_table("t", data, Partitioning::Hash)?;

    let mut front = Frontend::new(Executor::new(&cluster), "t")?.with_engines(10)?;
    println!("replaying {path}");
    for line in source.lines() {
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            continue;
        }
        match front.run(stmt) {
            Ok(out) => {
                println!("\n> {}", out.plan);
                if let Some(explain) = &out.explain {
                    println!("{explain}");
                } else {
                    for r in &out.results {
                        println!(
                            "  {} = {:?}  [{} via {:?}, {:.1} sim ms]",
                            r.spec,
                            r.answer,
                            r.source,
                            r.strategy,
                            r.cost.wall_us / 1e3
                        );
                    }
                }
            }
            Err(e) => println!("\n> {stmt}\n{e}"),
        }
    }
    Ok(())
}
