//! The Fig-3 scenario: a geo-distributed deployment where edge agents
//! filter analytical queries away from the WAN, and the core's master
//! model bootstraps freshly joined edges.
//!
//! ```text
//! cargo run -p sea-bench --release --example geo_deployment
//! ```

use sea_common::{AggregateKind, AnalyticalQuery, Point, Rect, Region};
use sea_geo::{GeoConfig, GeoSource, GeoSystem};
use sea_storage::{Partitioning, StorageCluster};
use sea_workload::{DataGenerator, DataSpec};

fn query(cx: f64, e: f64) -> sea_common::Result<AnalyticalQuery> {
    Ok(AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![cx, 50.0]), &[e, e])?),
        AggregateKind::Count,
    ))
}

fn main() -> sea_common::Result<()> {
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])?;
    let data = DataGenerator::new(DataSpec::Uniform { domain }, 7).generate(150_000)?;
    let mut cluster = StorageCluster::new(8, 512);
    cluster.load_table("events", data, Partitioning::Hash)?;

    // Deployment: 3 edge sites, 15% error budget.
    let mut geo = GeoSystem::new(
        &cluster,
        "events",
        GeoConfig {
            edges: 3,
            error_threshold: 0.15,
            ..GeoConfig::default()
        },
    )?;

    // Phase 1: analysts at edge 0 issue 250 queries on their hotspot.
    for i in 0..250 {
        let e = 4.0 + (i % 18) as f64 * 0.5;
        geo.submit(0, &query(50.0, e)?)?;
    }
    let s = geo.stats().clone();
    println!(
        "edge 0 after 250 queries: {:.0}% answered locally, {:.1} KB over the WAN, \
         mean response {:.1} ms",
        100.0 * (1.0 - s.fallback_rate()),
        s.wan_bytes as f64 / 1e3,
        s.mean_response_us() / 1e3
    );

    // Baseline for the same workload: everything to the core.
    let mut baseline = GeoSystem::new(&cluster, "events", GeoConfig::default())?;
    for i in 0..250 {
        let e = 4.0 + (i % 18) as f64 * 0.5;
        baseline.submit_all_to_core(&query(50.0, e)?)?;
    }
    println!(
        "all-to-core baseline: {:.1} KB WAN, mean response {:.1} ms",
        baseline.stats().wan_bytes as f64 / 1e3,
        baseline.stats().mean_response_us() / 1e3
    );

    // Phase 2: a new edge joins. Shipping the core's master model lets it
    // answer locally from its first query (distributed model building).
    geo.reset_stats();
    let shipped = geo.sync_edge(2)?;
    let mut local = 0;
    for i in 0..50 {
        let e = 4.0 + (i % 18) as f64 * 0.5;
        if geo.submit(2, &query(50.0, e)?)?.source == GeoSource::EdgeModel {
            local += 1;
        }
    }
    println!(
        "fresh edge 2: synced {} model bytes from the core, then answered {local}/50 \
         queries locally",
        shipped
    );
    Ok(())
}
