//! The "Penny" scenario of §III-A: an analyst explores a multi-dimensional
//! data space with range selections and dependence statistics, gets
//! *explanations* with her answers, and asks a higher-level interrogation
//! — "where is the correlation above a threshold?" — answered entirely
//! from models.
//!
//! ```text
//! cargo run -p sea-bench --release --example exploratory_analytics
//! ```

use sea_common::{AggregateKind, AnalyticalQuery, Point, Record, Rect, Region};
use sea_core::{interesting_subspaces, AgentConfig, Explanation, SeaAgent};
use sea_query::Executor;
use sea_storage::{Partitioning, StorageCluster};

fn main() -> sea_common::Result<()> {
    // A dataset whose attr0↔attr1 correlation is strong only in one
    // region: y = 2x + noise for x < 40, pure noise elsewhere.
    let records: Vec<Record> = (0u64..120_000)
        .map(|i| {
            let x = (i % 1000) as f64 / 10.0;
            let jitter = ((i.wrapping_mul(2654435761)) % 1000) as f64 / 100.0 - 5.0;
            let y = if x < 40.0 {
                2.0 * x + jitter
            } else {
                50.0 + jitter * 10.0
            };
            Record::new(i, vec![x, y])
        })
        .collect();
    let mut cluster = StorageCluster::new(8, 512);
    cluster.load_table("survey", records, Partitioning::Hash)?;
    let exec = Executor::new(&cluster);

    // Penny explores: correlation queries across the x-range train the
    // agent's correlation pool. A small spawn distance gives each explored
    // location its own quantum, so the models specialize.
    let mut agent = SeaAgent::new(
        2,
        AgentConfig {
            quantizer: sea_ml::quantize::QuantizerParams {
                spawn_distance: 8.0,
                ..Default::default()
            },
            // Penalize extrapolation hard: interrogation sweeps probe far
            // from the trained prototypes, and those guesses must be
            // flagged, not reported.
            distance_penalty: 0.3,
            ..AgentConfig::default()
        },
    )?;
    for i in 0..400 {
        let cx = 5.0 + (i % 19) as f64 * 5.0;
        let cy = if cx < 40.0 { 2.0 * cx } else { 50.0 };
        let q = AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![cx, cy]), &[5.0, 30.0])?),
            AggregateKind::Correlation { x: 0, y: 1 },
        );
        if let Ok(exact) = exec.execute_direct("survey", &q) {
            agent.train(&q, &exact.answer)?;
        }
    }
    println!(
        "agent state: {} pools, {} quanta, {} training queries",
        agent.stats().pools,
        agent.stats().quanta,
        agent.stats().training_queries
    );

    // Higher-level interrogation: "return the subspaces where the
    // correlation coefficient exceeds 0.8" — zero base-data accesses.
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 120.0])?;
    let hits = interesting_subspaces(
        &agent,
        &domain,
        10,
        &[5.0, 30.0], // probe with the same selection geometry Penny used
        AggregateKind::Correlation { x: 0, y: 1 },
        0.8,
        0.45, // only confidently-known subspaces
    )?;
    println!("subspaces with predicted correlation > 0.8:");
    for h in hits.iter().take(8) {
        let c = h.region.center();
        println!(
            "  centre ({:5.1}, {:5.1})  predicted r = {:.3} (est err {:.3})",
            c.coord(0),
            c.coord(1),
            h.predicted,
            h.estimated_error
        );
    }

    // Explanations: how does the count in a subspace depend on its size?
    let mut count_agent = SeaAgent::new(2, AgentConfig::default())?;
    for i in 0..200 {
        let e = 3.0 + (i % 20) as f64 * 0.5;
        let q = AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![20.0, 40.0]), &[e, e])?),
            AggregateKind::Count,
        );
        if let Ok(exact) = exec.execute_direct("survey", &q) {
            count_agent.train(&q, &exact.answer)?;
        }
    }
    let anchor = AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![20.0, 40.0]), &[6.0, 6.0])?),
        AggregateKind::Count,
    );
    let explanation = Explanation::for_query(&count_agent, &anchor)?;
    println!(
        "explanation (support {} answers): count grows by ≈{:.1} per unit of volume",
        explanation.support,
        explanation.volume_slope_at(144.0)
    );
    println!("  plugging in volumes without issuing queries:");
    for vol in [64.0, 144.0, 256.0] {
        println!(
            "    volume {vol:6.0} → predicted count {:8.1}",
            explanation.answer_at_volume(vol)
        );
    }
    Ok(())
}
