//! A raw-data analytics session (RT2-2 + RT2-3): data lands as an
//! unsorted raw column with no ETL; the cracking index self-organizes
//! under the analyst's queries, and ad hoc ML tasks (clustering,
//! regression, classification) run directly over selected subspaces.
//!
//! ```text
//! cargo run -p sea-bench --release --example raw_data_session
//! ```

use sea_common::{CostModel, Record, Rect, Region};
use sea_index::CrackerIndex;
use sea_query::{classify_subspace, cluster_subspace, regress_subspace};
use sea_storage::{Partitioning, StorageCluster};

fn main() -> sea_common::Result<()> {
    // ---- Raw-data exploration with a cracking index ---------------------
    // A 500k-value raw column, no preprocessing.
    let n = 500_000u64;
    let raw: Vec<(f64, u64)> = (0..n)
        .map(|i| ((i.wrapping_mul(2654435761) % n) as f64, i))
        .collect();
    let mut cracker = CrackerIndex::new(raw)?;
    println!(
        "raw column: {} values, 0 cracks, no ETL performed",
        cracker.len()
    );
    for round in 1..=3 {
        let (count, touched) = cracker.count(200_000.0, 250_000.0)?;
        println!(
            "  round {round}: count[200k, 250k) = {count}, touched {touched} elements, \
             {} cracks held",
            cracker.num_cracks()
        );
    }
    let (_, touched) = cracker.count(210_000.0, 240_000.0)?;
    println!("  nested range after warm-up: touched only {touched} elements");

    // ---- Ad hoc ML over an analyst-selected subspace ---------------------
    // 4-attribute table: spatial x/y, a response 3x − y + 2, and a class.
    let records: Vec<Record> = (0..60_000)
        .map(|i| {
            let x = (i % 300) as f64 / 3.0;
            let y = ((i / 300) % 200) as f64 / 2.0;
            let response = 3.0 * x - y + 2.0;
            let class = if x + y < 100.0 { 0.0 } else { 1.0 };
            Record::new(i as u64, vec![x, y, response, class])
        })
        .collect();
    let mut cluster = StorageCluster::new(8, 512);
    cluster.load_table("obs", records, Partitioning::Hash)?;
    let model = CostModel::default();

    // Penny selects a subspace and asks for its structure.
    let subspace = Region::Range(Rect::new(
        vec![20.0, 20.0, -1e9, -1.0],
        vec![80.0, 80.0, 1e9, 2.0],
    )?);

    let km = cluster_subspace(&cluster, "obs", &subspace, 2, &model)?;
    println!(
        "\nk-means over the selected subspace ({} records, {:.1} ms):",
        km.records_in_subspace,
        km.cost.wall_us / 1e3
    );
    for c in km.output.centroids() {
        println!("  centroid at ({:6.2}, {:6.2}, …)", c[0], c[1]);
    }

    let reg = regress_subspace(&cluster, "obs", &subspace, 2, &model)?;
    println!(
        "regression of attr2 on the others: weights {:?} intercept {:.3}",
        reg.output
            .weights()
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        reg.output.intercept()
    );

    let probes = vec![
        vec![30.0, 30.0, 3.0 * 30.0 - 30.0 + 2.0],
        vec![70.0, 70.0, 3.0 * 70.0 - 70.0 + 2.0],
    ];
    let labels = classify_subspace(&cluster, "obs", &subspace, 3, &probes, 7, &model)?;
    println!(
        "kNN classification of two probes: {:?} (expected [0, 1])",
        labels.output
    );
    Ok(())
}
