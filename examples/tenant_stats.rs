//! Tenant stats: run three tenants through the `sea-service` front door
//! — a dashboard on its own agent pipeline + semantic cache, an ad hoc
//! analyst on the exact executor, and a crawler throttled by a
//! simulated-money budget and a token-bucket rate limit — then read the
//! per-request cost ledger back through the read-only `StatsService`:
//! summary, range filters, tenant × aggregate × source breakdown,
//! top-N most expensive, and the JSON report `--stats-out` writes.
//!
//! Everything runs on the simulated clock, so the whole transcript is
//! deterministic at any `SEA_EXEC_THREADS` setting.
//!
//! ```text
//! cargo run -p sea-bench --release --example tenant_stats
//! ```

use std::sync::Arc;

use sea_cache::{CacheConfig, SemanticCache};
use sea_common::{AggregateKind, AnalyticalQuery, Point, Rect, Region};
use sea_core::{AgentConfig, AgentPipeline, ExecMode};
use sea_query::Executor;
use sea_service::{QueryService, StatsFilter, StatsService, TenantConfig};
use sea_storage::{Partitioning, StorageCluster};
use sea_telemetry::TelemetrySink;
use sea_workload::{DataGenerator, DataSpec};

const ROUNDS: usize = 10;
/// Simulated idle time between rounds; refills token buckets.
const ROUND_GAP_US: f64 = 1_000_000.0;

/// The dashboard cycles four fixed hotspot COUNTs, so repeats hit its
/// semantic cache (or, once the agent is trained, are predicted).
fn dashboard_query(i: usize) -> sea_common::Result<AnalyticalQuery> {
    let extent = 6.0 + (i % 4) as f64;
    Ok(AnalyticalQuery::new(
        Region::Range(Rect::centered(
            &Point::new(vec![50.0, 50.0]),
            &[extent, extent],
        )?),
        AggregateKind::Count,
    ))
}

/// The analyst asks scattered narrow COUNTs.
fn analyst_query(i: usize) -> sea_common::Result<AnalyticalQuery> {
    let c = 20.0 + (i % 7) as f64 * 9.0;
    Ok(AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![c, c]), &[5.0, 7.0])?),
        AggregateKind::Count,
    ))
}

/// The crawler floods wide MEDIANs — holistic, so every selected value
/// ships to the coordinator and each query is expensive.
fn crawler_query(i: usize) -> sea_common::Result<AnalyticalQuery> {
    let c = 30.0 + (i % 5) as f64 * 8.0;
    Ok(AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![c, 50.0]), &[18.0, 25.0])?),
        AggregateKind::Median { dim: 0 },
    ))
}

fn main() -> sea_common::Result<()> {
    // 1. A shared cluster with a recording sink, so the stats report
    //    also carries the service.* / query.* counter table.
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])?;
    let data = DataGenerator::new(DataSpec::Uniform { domain }, 7).generate(50_000)?;
    let mut cluster = StorageCluster::new(8, 512);
    cluster.load_table("sensors", data, Partitioning::Hash)?;
    let sink = TelemetrySink::recording();
    cluster.set_telemetry(sink.clone());

    // Calibrate the crawler's budget from one probe: enough money for
    // ~10 of its queries, far below its 60-query appetite.
    let probe = Executor::new(&cluster)
        .execute_direct("sensors", &crawler_query(0)?)?
        .cost
        .money;
    let budget = 10.0 * probe;

    // 2. The front door: three tenants, three policies.
    let mut svc = QueryService::new(Executor::new(&cluster), "sensors");
    let cache = Arc::new(SemanticCache::new(CacheConfig {
        admit_min_cost_us: 0.0,
        ..CacheConfig::default()
    }));
    let pipeline =
        AgentPipeline::new(2, AgentConfig::default(), "sensors", 0.15, ExecMode::Direct)?
            .with_cache(cache);
    svc.register_tenant_with_pipeline("dashboard", TenantConfig::default(), pipeline)?;
    svc.register_tenant("analyst", TenantConfig::default())?;
    svc.register_tenant(
        "crawler",
        TenantConfig {
            money_budget: Some(budget),
            rate_per_sec: Some(2.0),
            burst: 3.0,
            ..TenantConfig::default()
        },
    )?;

    // 3. Ten rounds of interleaved load: the dashboard refreshes twice,
    //    the analyst asks once, the crawler floods six times.
    let mut i = 0;
    for _ in 0..ROUNDS {
        for _ in 0..2 {
            svc.submit("dashboard", &dashboard_query(i)?)?;
            i += 1;
        }
        svc.submit("analyst", &analyst_query(i)?)?;
        for _ in 0..6 {
            svc.submit("crawler", &crawler_query(i)?)?;
            i += 1;
        }
        svc.advance_clock(ROUND_GAP_US);
    }
    println!("tenant      submitted answered rej_budget rej_rate      money");
    for tenant in svc.tenants() {
        let u = svc.tenant_usage(&tenant).expect("registered");
        println!(
            "{tenant:<12} {:>8} {:>8} {:>10} {:>8} {:>10.3e}",
            u.submitted, u.answered, u.rejected_budget, u.rejected_rate, u.money
        );
    }

    // 4. The read path: a frozen snapshot of the ledger, read without
    //    touching the serving path.
    let stats = StatsService::new(&svc.ledger(), sink.clone());
    let all = stats.summary(&StatsFilter::default());
    println!(
        "\nledger: {} rows, {} answered, {} rejected, total money {:.3e}, mean {:.1} us",
        all.queries,
        all.answered,
        all.rejected_budget + all.rejected_rate,
        all.total_money,
        all.mean_wall_us
    );

    // Range filters: one tenant, and the first three simulated seconds.
    let crawler = stats.summary(&StatsFilter {
        tenant: Some("crawler".into()),
        ..StatsFilter::default()
    });
    let early = stats.summary(&StatsFilter {
        sim_time_us: Some((0.0, 3_000_000.0)),
        ..StatsFilter::default()
    });
    println!(
        "crawler alone: {}/{} answered; first 3 simulated s: {} submissions",
        crawler.answered, crawler.queries, early.queries
    );

    // Tenant × aggregate × source: rejected load shows up next to the
    // served load, and the dashboard's provenance mix is visible.
    println!("\ntenant      aggregate source        queries      money");
    for cell in stats.breakdown(&StatsFilter::default()) {
        println!(
            "{:<12} {:<9} {:<13} {:>7} {:>10.3e}",
            cell.tenant, cell.aggregate, cell.source, cell.queries, cell.money
        );
    }

    let top = stats.top_expensive(3, &StatsFilter::default());
    println!("\ntop-3 most expensive (tenant, seq, money):");
    for row in &top {
        println!("  {} seq={} money={:.3e}", row.tenant, row.seq, row.money);
    }

    // 5. The full report is what `--stats-out` writes as stats.json.
    let report = stats.report(3);
    let service_counters: Vec<_> = report
        .counters
        .iter()
        .filter(|c| c.name.starts_with("service."))
        .collect();
    for c in &service_counters {
        println!("{} = {}", c.name, c.value);
    }
    println!("stats.json: {} bytes", report.to_json()?.len());
    Ok(())
}
