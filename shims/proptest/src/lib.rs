//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` test-harness macro, `prop_assert*`/
//! `prop_assume!`/`prop_oneof!`, `Just`, `prop::collection::vec`, range
//! and tuple strategies, and `ProptestConfig::with_cases`. Unlike real
//! proptest there is **no shrinking** — a failing case panics with the
//! generated inputs' debug representation, which is enough to reproduce
//! (generation is deterministic per test name + case index).

use std::ops::{Range, RangeInclusive};

/// Outcome of one generated test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — generate another.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    pub fn reject() -> Self {
        Self::Reject
    }
}

/// Per-test configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-case RNG (SplitMix64 over a seed derived from the
/// test path and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_path.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        seed ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample empty range");
        self.next_u64() % n
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: std::fmt::Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                ((self.start as u128).wrapping_add(v)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                ((lo as u128).wrapping_add(v)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Vec of `size` elements drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use super::prop;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                format_args!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}` ({}:{})",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {} ({}:{})",
                l,
                r,
                format_args!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}` ({}:{})",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Test-harness macro: each `fn` becomes a `#[test]`-style item that
/// loops over generated cases. Rejected cases (via `prop_assume!`) are
/// retried up to 16× the case budget.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut passed = 0u32;
                let mut case = 0u32;
                let budget = config.cases.saturating_mul(16).max(16);
                while passed < config.cases {
                    assert!(
                        case < budget,
                        "proptest: too many rejected cases ({} passed of {})",
                        passed,
                        config.cases
                    );
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    case += 1;
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let __debug_inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}; ")),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}\n  inputs: {}", case - 1, msg, __debug_inputs);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn even(limit: u64) -> impl Strategy<Value = u64> {
        (0..limit).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..17u64, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn mapped_strategies_apply(n in even(10)) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn assume_rejects_cases(n in 0..100u64) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn oneof_and_just_and_vec(choice in prop_oneof![Just(1u64), Just(7u64)],
                                  xs in prop::collection::vec(0.0f64..1.0, 2..10)) {
            prop_assert!(choice == 1 || choice == 7);
            prop_assert!(xs.len() >= 2 && xs.len() < 10);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0..1000u64, 0.0f64..1.0);
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #[test]
        #[should_panic(expected = "proptest case")]
        fn failing_case_panics_with_inputs(x in 0..10u64) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
