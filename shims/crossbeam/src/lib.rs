//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` / `Scope::spawn` / `ScopedJoinHandle::join`,
//! implemented on top of `std::thread::scope` (stable since Rust 1.63).
//!
//! Semantic notes relative to real crossbeam:
//! - `scope` returns `Ok(..)` unless the closure itself panics; panics in
//!   spawned threads surface through `join()` exactly as in crossbeam.
//! - Spawn closures receive a placeholder `&()` argument instead of a
//!   nested `&Scope`; every call site in this workspace ignores the
//!   argument (`|_|`), so nested spawning is intentionally unsupported.

pub mod thread {
    use std::any::Any;

    type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Scope handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped worker thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. The closure argument is a
        /// placeholder for crossbeam's nested-scope handle.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&())),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all workers are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_workers() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_surfaces_in_join() {
        let caught = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join().is_err()
        });
        assert!(caught.unwrap_or(false));
    }
}
