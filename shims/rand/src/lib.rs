//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors API-compatible shims (see `shims/README.md`). Provided here:
//! `StdRng` (xoshiro256** seeded through SplitMix64 — *not* the real
//! `StdRng` stream, but a high-quality deterministic generator),
//! `SeedableRng::seed_from_u64`, and the `Rng` extension trait with
//! `gen_range` over half-open/inclusive integer and float ranges plus
//! `gen_bool`. The `Distribution` trait lives here (as in real rand)
//! so that `rand_distr` can implement it.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value distribution that can be sampled with any RNG.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Ranges (and other shapes) that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range; panics on an empty range, matching
    /// real `rand`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a `u64` to a uniform f64 in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as u128).wrapping_add(v)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                ((lo as u128).wrapping_add(v)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let wide: f64 = (f64::from(self.start)..f64::from(self.end)).sample_single(rng);
        wide as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; same API, different (but
    /// fixed) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Distribution, Rng, RngCore, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = rng.gen_range(5.0f64..=6.0);
            assert!((5.0..=6.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 8];
        for _ in 0..16_000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for b in buckets {
            assert!((1_700..=2_300).contains(&b), "bucket count {b}");
        }
    }
}
