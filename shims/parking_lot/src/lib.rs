//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal API-compatible shims for its external dependencies
//! (see `shims/README.md`). This one wraps `std::sync` primitives with
//! `parking_lot`'s non-poisoning signatures: `lock()`, `read()` and
//! `write()` return guards directly instead of `Result`s. A poisoned
//! std lock (a panic while held) is recovered via `into_inner`, which
//! matches `parking_lot`'s behaviour of not propagating poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with the `parking_lot::Mutex` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock`
/// calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
