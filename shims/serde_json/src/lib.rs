//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, and `from_str`, built on the serde
//! shim's [`serde::Value`] tree.
//!
//! Fidelity notes:
//! - Floats are written with Rust's shortest-round-trip `Display`, so
//!   `f64` values survive a serialize/parse cycle bit-exactly.
//! - Non-finite floats are written as `null` (matching real serde_json)
//!   and error on read-back into an `f64` field.
//! - Integers keep full `u64`/`i64` precision end to end.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization failure with a position-annotated
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Malformed JSON, trailing garbage, or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(|e| Error::new(e.0))
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len() && !matches!(self.bytes[self.pos], b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn floats_round_trip_exactly() {
        let xs = vec![0.1 + 0.2, 1.0 / 3.0, -1e-12, 123456789.123456, 5.0];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn integers_keep_full_precision() {
        let xs = vec![u64::MAX, 0, (1u64 << 53) + 1];
        let back: Vec<u64> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" \\slash\\ unicode → ok".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn maps_and_options() {
        let mut m: HashMap<String, Option<f64>> = HashMap::new();
        m.insert("a".into(), Some(1.5));
        m.insert("b".into(), None);
        let back: HashMap<String, Option<f64>> = from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Vec<f64>>("[1, 2").is_err());
        assert!(from_str::<f64>("{broken").is_err());
        assert!(from_str::<f64>("1.5 garbage").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let xs = vec![vec![1.0, 2.0], vec![]];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<f64>> = from_str(&pretty).unwrap();
        assert_eq!(xs, back);
    }
}
