//! Offline vendored `#[derive(Serialize, Deserialize)]` for the serde
//! shim (see `shims/serde`). Implemented directly on `proc_macro`
//! token trees — no `syn`/`quote` — because the build environment
//! cannot fetch crates.
//!
//! Supported shapes (everything this workspace derives on):
//! named structs, tuple structs (newtype and wider), unit structs, and
//! enums with unit / tuple / struct variants, all optionally generic.
//! Enums use serde's externally-tagged encoding. The recognized field
//! attributes are `#[serde(skip)]` (skipped on serialize,
//! `Default::default()` on deserialize) and `#[serde(default)]`
//! (serialized normally; `Default::default()` when missing on
//! deserialize, so added fields stay backward-compatible).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

struct Item {
    name: String,
    /// `(param name, original inline bounds)` pairs, e.g. `("P", "Clone")`.
    generics: Vec<(String, String)>,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

fn is_ident(t: &TokenTree, word: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == word)
}

fn punct_char(t: &TokenTree) -> Option<char> {
    match t {
        TokenTree::Punct(p) => Some(p.as_char()),
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility to the `struct`/`enum` keyword.
    while i < tokens.len() && !is_ident(&tokens[i], "struct") && !is_ident(&tokens[i], "enum") {
        if punct_char(&tokens[i]) == Some('#') {
            i += 2; // `#` + bracketed attribute group
        } else {
            i += 1;
        }
    }
    let is_enum = is_ident(&tokens[i], "enum");
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;

    let mut generics: Vec<(String, String)> = Vec::new();
    if i < tokens.len() && punct_char(&tokens[i]) == Some('<') {
        i += 1;
        let mut depth = 1u32;
        let mut at_param_start = true;
        let mut after_lifetime_quote = false;
        let mut bounds_of: Option<String> = None; // Some(..) while inside `:` bounds
        while i < tokens.len() && depth > 0 {
            let tok = &tokens[i];
            match punct_char(tok) {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        if let Some(b) = bounds_of.take() {
                            if let Some(last) = generics.last_mut() {
                                last.1 = b;
                            }
                        }
                        i += 1;
                        break;
                    }
                }
                Some(',') if depth == 1 => {
                    if let Some(b) = bounds_of.take() {
                        if let Some(last) = generics.last_mut() {
                            last.1 = b;
                        }
                    }
                    at_param_start = true;
                    i += 1;
                    continue;
                }
                Some(':') if depth == 1 && bounds_of.is_none() => {
                    bounds_of = Some(String::new());
                    i += 1;
                    continue;
                }
                Some('\'') => after_lifetime_quote = true,
                _ => {}
            }
            if let Some(b) = bounds_of.as_mut() {
                b.push_str(&tok.to_string());
                b.push(' ');
            } else if let TokenTree::Ident(id) = tok {
                if after_lifetime_quote {
                    after_lifetime_quote = false;
                } else if at_param_start {
                    generics.push((id.to_string(), String::new()));
                    at_param_start = false;
                }
            }
            i += 1;
        }
    }

    // Skip a possible `where` clause; the defining body is the next
    // brace/paren group or a bare `;` (unit struct).
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if is_enum {
                    Kind::Enum(parse_variants(g))
                } else {
                    Kind::Struct(Fields::Named(parse_named_fields(g)))
                };
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                break Kind::Struct(Fields::Tuple(tuple_arity(g)));
            }
            Some(t) if punct_char(t) == Some(';') => break Kind::Struct(Fields::Unit),
            Some(_) => i += 1,
            None => break Kind::Struct(Fields::Unit),
        }
    };

    Item {
        name,
        generics,
        kind,
    }
}

/// Consumes leading `#[...]` attributes; returns whether any was
/// `#[serde(skip)]` / `#[serde(default)]` as `(skip, default)`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let mut skip = false;
    let mut default = false;
    while *i < tokens.len() && punct_char(&tokens[*i]) == Some('#') {
        if let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) {
            let text = attr.stream().to_string();
            if text.starts_with("serde") {
                if text.contains("skip") {
                    skip = true;
                }
                if text.contains("default") {
                    default = true;
                }
            }
        }
        *i += 2;
    }
    (skip, default)
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1; // pub(crate) / pub(super)
            }
        }
    }
}

/// Advances past the current element's type (or discriminant) up to and
/// including the next comma at angle-bracket depth zero.
fn skip_to_next_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i64;
    while *i < tokens.len() {
        match punct_char(&tokens[*i]) {
            Some('<') => depth += 1,
            Some('>') => depth -= 1,
            Some(',') if depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, default) = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(Field {
            name: id.to_string(),
            skip,
            default,
        });
        i += 1; // name
        i += 1; // `:`
        skip_to_next_comma(&tokens, &mut i);
    }
    fields
}

fn tuple_arity(group: &Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut depth = 0i64;
    let mut arity = 0usize;
    let mut element_open = false;
    for tok in &tokens {
        match punct_char(tok) {
            Some('<') => depth += 1,
            Some('>') => depth -= 1,
            Some(',') if depth == 0 => element_open = false,
            _ => {
                if !element_open {
                    arity += 1;
                    element_open = true;
                }
            }
        }
    }
    arity
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        skip_to_next_comma(&tokens, &mut i); // discriminant (if any) + `,`
        variants.push(Variant { name, fields });
    }
    variants
}

/// `impl<P: Clone + ::serde::Serialize> ::serde::Serialize for Foo<P>`
/// header pieces: `(impl_params, type_args)`.
fn generics_pieces(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let params: Vec<String> = item
        .generics
        .iter()
        .map(|(name, bounds)| {
            if bounds.is_empty() {
                format!("{name}: {bound}")
            } else {
                format!("{name}: {bounds} + {bound}")
            }
        })
        .collect();
    let args: Vec<String> = item.generics.iter().map(|(n, _)| n.clone()).collect();
    (
        format!("<{}>", params.join(", ")),
        format!("<{}>", args.join(", ")),
    )
}

fn gen_serialize(item: &Item) -> String {
    let (impl_params, type_args) = generics_pieces(item, "::serde::Serialize");
    let body = match &item.kind {
        Kind::Struct(fields) => ser_struct_body(fields),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&ser_variant_arm(v));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_params} ::serde::Serialize for {name}{type_args} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    )
}

fn ser_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Fields::Named(fs) => {
            let mut pushes = String::new();
            for f in fs.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "{{ let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes} ::serde::Value::Map(entries) }}"
            )
        }
    }
}

fn ser_variant_arm(v: &Variant) -> String {
    let name = &v.name;
    match &v.fields {
        Fields::Unit => format!("Self::{name} => ::serde::Value::Str(\"{name}\".to_string()),\n"),
        Fields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(f0)".to_string()
            } else {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "Self::{name}({binds}) => ::serde::Value::Map(vec![(\"{name}\".to_string(), {inner})]),\n",
                binds = binders.join(", ")
            )
        }
        Fields::Named(fs) => {
            let binders: Vec<String> = fs
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: _", f.name)
                    } else {
                        f.name.clone()
                    }
                })
                .collect();
            let items: Vec<String> = fs
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "Self::{name} {{ {binds} }} => ::serde::Value::Map(vec![(\"{name}\".to_string(), \
                 ::serde::Value::Map(vec![{items}]))]),\n",
                binds = binders.join(", "),
                items = items.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_params, type_args) = generics_pieces(item, "::serde::Deserialize");
    let body = match &item.kind {
        Kind::Struct(fields) => de_struct_body(&item.name, fields),
        Kind::Enum(variants) => de_enum_body(&item.name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_params} ::serde::Deserialize for {name}{type_args} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}",
        name = item.name
    )
}

fn de_named_fields_init(fs: &[Field]) -> String {
    let inits: Vec<String> = fs
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default()", f.name)
            } else if f.default {
                format!(
                    "{n}: ::serde::field_or_default(entries, \"{n}\")?",
                    n = f.name
                )
            } else {
                format!("{n}: ::serde::field(entries, \"{n}\")?", n = f.name)
            }
        })
        .collect();
    inits.join(", ")
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "Ok(Self)".to_string(),
        Fields::Tuple(1) => "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{ ::serde::Value::Seq(items) if items.len() == {n} => \
                 Ok(Self({items})), \
                 other => Err(::serde::DeError::expected(\"{n}-tuple for {name}\", other)) }}",
                items = items.join(", ")
            )
        }
        Fields::Named(fs) => format!(
            "match v {{ ::serde::Value::Map(m) => {{ let entries = m.as_slice(); Ok(Self {{ {inits} }}) }}, \
             other => Err(::serde::DeError::expected(\"map for struct {name}\", other)) }}",
            inits = de_named_fields_init(fs)
        ),
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!("\"{vn}\" => Ok(Self::{vn}),\n"));
            }
            Fields::Tuple(1) => {
                data_arms.push_str(&format!(
                    "\"{vn}\" => Ok(Self::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                ));
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => match inner {{ ::serde::Value::Seq(items) if items.len() == {n} => \
                     Ok(Self::{vn}({items})), \
                     other => Err(::serde::DeError::expected(\"{n}-tuple for {name}::{vn}\", other)) }},\n",
                    items = items.join(", ")
                ));
            }
            Fields::Named(fs) => {
                data_arms.push_str(&format!(
                    "\"{vn}\" => match inner {{ ::serde::Value::Map(m) => {{ let entries = m.as_slice(); \
                     Ok(Self::{vn} {{ {inits} }}) }}, \
                     other => Err(::serde::DeError::expected(\"map for {name}::{vn}\", other)) }},\n",
                    inits = de_named_fields_init(fs)
                ));
            }
        }
    }
    format!(
        "match v {{\n\
         ::serde::Value::Str(s) => match s.as_str() {{\n\
         {unit_arms}\
         other => Err(::serde::DeError::msg(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
         }},\n\
         ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
         let (tag, inner) = (&entries[0].0, &entries[0].1);\n\
         match tag.as_str() {{\n\
         {data_arms}\
         other => Err(::serde::DeError::msg(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
         }}\n\
         }},\n\
         other => Err(::serde::DeError::expected(\"enum {name}\", other)),\n\
         }}"
    )
}
