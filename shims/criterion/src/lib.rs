//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Runs each benchmark for a small fixed number of samples and prints
//! median/min/max per-iteration timings. No warm-up modelling, outlier
//! analysis, or HTML reports — just enough to keep `cargo bench`
//! compiling and producing indicative numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility, the
/// shim sizes every batch at one routine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.results
                .push(start.elapsed() / u32::try_from(self.iters_per_sample).unwrap_or(1));
        }
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

/// Benchmark driver; collects and prints per-function timings.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            iters_per_sample: 1,
            results: Vec::new(),
        };
        f(&mut b);
        let mut sorted = b.results.clone();
        sorted.sort();
        if sorted.is_empty() {
            println!("{id:<40} no samples recorded");
        } else {
            let median = sorted[sorted.len() / 2];
            let min = sorted[0];
            let max = sorted[sorted.len() - 1];
            println!(
                "{id:<40} median {median:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
                sorted.len()
            );
        }
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 5);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
    }
}
