//! Offline stand-in for the subset of `rand_distr` this workspace uses:
//! `Normal` (Box–Muller) and `Zipf` (rejection-inversion sampling), both
//! implementing `rand::Distribution<f64>`.

pub use rand::Distribution;
use rand::{Rng, SampleRange};

/// Error from invalid `Normal` parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation was negative or non-finite.
    BadVariance,
    /// Mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadVariance => write!(f, "standard deviation must be finite and non-negative"),
            Self::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution, sampled with the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// # Errors
    ///
    /// Non-finite mean, or negative/non-finite standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; the second variate is discarded to keep the
        // distribution stateless (sampling stays deterministic per draw).
        let u1: f64 = (f64::EPSILON..1.0).sample_single(rng);
        let u2: f64 = (0.0..1.0).sample_single(rng);
        let radius = (-2.0 * u1.ln()).sqrt();
        self.mean + self.std_dev * radius * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Error from invalid `Zipf` parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// Number of elements was zero.
    NumElements,
    /// Exponent was negative or non-finite.
    STooSmall,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NumElements => write!(f, "number of elements must be positive"),
            Self::STooSmall => write!(f, "exponent must be finite and non-negative"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over ranks `1..=n` with exponent `s`, sampled by
/// rejection from the continuous envelope `x^{-s}` on `[0.5, n + 0.5]`
/// (inversion of the envelope CDF, then a midpoint-rule acceptance test;
/// by Hermite–Hadamard the acceptance probability is always ≤ 1, so the
/// resulting rank distribution is exactly Zipf). Samples are `f64` ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: f64,
    s: f64,
    /// `H(0.5)` — envelope CDF lower bound.
    h_lo: f64,
    /// `H(n + 0.5)` — envelope CDF upper bound.
    h_hi: f64,
}

impl Zipf {
    /// # Errors
    ///
    /// Zero `n`, or negative/non-finite `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NumElements);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::STooSmall);
        }
        let nf = n as f64;
        let mut z = Self {
            n: nf,
            s,
            h_lo: 0.0,
            h_hi: 0.0,
        };
        z.h_lo = z.h(0.5);
        z.h_hi = z.h(nf + 0.5);
        Ok(z)
    }

    /// Antiderivative of `x^{-s}`; strictly increasing for any `s ≥ 0`.
    fn h(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            x.powf(1.0 - self.s) / (1.0 - self.s)
        }
    }

    fn h_inv(&self, u: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-12 {
            u.exp()
        } else {
            ((1.0 - self.s) * u).powf(1.0 / (1.0 - self.s))
        }
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.n <= 1.0 {
            return 1.0;
        }
        loop {
            let u: f64 = (self.h_lo..self.h_hi).sample_single(rng);
            let x = self.h_inv(u).clamp(0.5, self.n + 0.5);
            let k = x.round().clamp(1.0, self.n);
            // True mass at k over envelope mass on [k − 0.5, k + 0.5].
            let accept = k.powf(-self.s) / (self.h(k + 0.5) - self.h(k - 0.5));
            let v: f64 = (0.0..1.0).sample_single(rng);
            if v <= accept {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn zipf_ranks_in_domain_and_skewed() {
        let d = Zipf::new(1000, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 30_000;
        let mut ones = 0u32;
        for _ in 0..n {
            let r = d.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&r), "rank {r}");
            assert_eq!(r, r.round());
            if r == 1.0 {
                ones += 1;
            }
        }
        // Rank 1 should dominate: mass ≈ 1/H ≫ uniform 1/1000.
        assert!(
            ones as f64 / n as f64 > 0.1,
            "rank-1 share {}",
            ones as f64 / n as f64
        );
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, 0.0).is_ok());
    }
}
