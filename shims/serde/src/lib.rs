//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors API-compatible shims (see `shims/README.md`). Real serde is a
//! zero-overhead streaming framework; this shim instead funnels every
//! type through an owned [`Value`] tree — dramatically simpler, and fast
//! enough for the snapshot/persistence paths that use it here.
//!
//! Data model notes:
//! - Maps with non-string keys (`HashMap<AggKey, _>`, `BTreeMap<OrderedF64, _>`,
//!   tuple keys…) serialize as sequences of `[key, value]` pairs.
//! - Map entries are emitted in a canonical order so output is
//!   deterministic even from `HashMap`s.
//! - Enums use serde's externally-tagged form: unit variants are strings,
//!   data variants are single-entry maps.
//! - Non-finite floats serialize as `null` (as `serde_json` does) and
//!   fail loudly on deserialization rather than silently corrupting.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree value — the interchange format every
/// `Serialize`/`Deserialize` impl goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// String-keyed map (struct fields, enum tags); preserves insertion
    /// order.
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::U64(_) => 2,
            Value::I64(_) => 3,
            Value::F64(_) => 4,
            Value::Str(_) => 5,
            Value::Seq(_) => 6,
            Value::Map(_) => 7,
        }
    }

    /// Total order used to canonicalize map-entry output; arbitrary but
    /// deterministic.
    pub fn canonical_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::U64(a), Value::U64(b)) => a.cmp(b),
            (Value::I64(a), Value::I64(b)) => a.cmp(b),
            (Value::F64(a), Value::F64(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Seq(a), Value::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.canonical_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Map(a), Value::Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.canonical_cmp(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }

    pub fn expected(what: &str, got: &Value) -> Self {
        Self(format!("expected {what}, got {got:?}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Converts a value of this type to the interchange [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstructs a value of this type from an interchange [`Value`] tree.
pub trait Deserialize: Sized {
    /// # Errors
    ///
    /// Shape or domain mismatch between the tree and this type.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field by name in a map's entries (derive-macro
/// helper). A missing field deserializes from `Null`, which succeeds for
/// `Option` fields and errors (with the field name) for everything else.
///
/// # Errors
///
/// Missing non-optional field, or a field-level shape mismatch.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
        None => T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

/// Like [`field`], but a *missing* field falls back to
/// `Default::default()` instead of erroring (derive-macro helper for
/// `#[serde(default)]`). A field that is present but has the wrong
/// shape still errors, so typos are not silently defaulted away.
///
/// # Errors
///
/// Field-level shape mismatch on a present field.
pub fn field_or_default<T: Deserialize + Default>(
    entries: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {}", e.0))),
        None => Ok(T::default()),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError::msg(format!("integer {n} out of range")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::F64(f)
                        if f.fract() == 0.0
                            && *f >= i64::MIN as f64
                            && *f <= i64::MAX as f64 =>
                    {
                        *f as i64
                    }
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| DeError::msg(format!("integer {n} out of range")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Seq(items) if items.len() == ARITY => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Shared map codec: `[key, value]` pair sequence in canonical key order.
fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(Value, Value)> =
        entries.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    pairs.sort_by(|a, b| a.0.canonical_cmp(&b.0));
    Value::Seq(
        pairs
            .into_iter()
            .map(|(k, v)| Value::Seq(vec![k, v]))
            .collect(),
    )
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Seq(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Seq(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                other => Err(DeError::expected("[key, value] pair", other)),
            })
            .collect(),
        other => Err(DeError::expected("map pair sequence", other)),
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries_from_value::<K, V>(v)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<f64> = Vec::from_value(&vec![1.0, 2.0].to_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn maps_round_trip_with_non_string_keys() {
        let mut m: HashMap<(u64, u64), f64> = HashMap::new();
        m.insert((1, 2), 3.5);
        m.insert((4, 5), -1.0);
        let back: HashMap<(u64, u64), f64> = HashMap::from_value(&m.to_value()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn map_output_is_canonical() {
        let mut a: HashMap<u64, u64> = HashMap::new();
        let mut b: HashMap<u64, u64> = HashMap::new();
        for i in 0..64 {
            a.insert(i, i * 2);
        }
        for i in (0..64).rev() {
            b.insert(i, i * 2);
        }
        assert_eq!(a.to_value(), b.to_value());
    }

    #[test]
    fn missing_field_errors_unless_optional() {
        let entries = vec![("present".to_string(), Value::U64(1))];
        assert_eq!(field::<u64>(&entries, "present").unwrap(), 1);
        assert!(field::<u64>(&entries, "absent").is_err());
        assert_eq!(field::<Option<u64>>(&entries, "absent").unwrap(), None);
    }
}
